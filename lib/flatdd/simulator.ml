type phase = Dd_phase | Conversion | Dmav_phase

exception Cancelled

type gate_record = {
  index : int;
  name : string;
  seconds : float;
  phase : phase;
  dd_size : int;
  ewma : float;
  cached : bool option;
}

type final_state =
  | Dd_state of { package : Dd.package; edge : Dd.vedge }
  | Flat_state of Buf.t

type result = {
  n : int;
  gates : int;
  final : final_state;
  converted_at : int option;
  seconds_total : float;
  seconds_dd : float;
  seconds_convert : float;
  seconds_dmav : float;
  conversion_stats : Convert.stats option;
  trace : gate_record list;
  peak_memory_bytes : int;
  dmav_gates_cached : int;
  dmav_gates_uncached : int;
  dmav_cache_hits : int;
  modeled_macs : float;
  fusion_stats : Fusion.stats option;
}

let memory_bytes_flat n ~buffers = (2 + buffers) * ((16 * (1 lsl n)) + 24)

(* Per-phase spans: the global metrics accumulate across runs, while each
   run's seconds_* fields are the same measurements taken locally by
   [Obs.timed] — one clock pair per phase, no stopwatch plumbing. *)
let s_dd_phase = Obs.span "sim.dd_phase"
let s_convert = Obs.span "sim.convert"
let s_dmav_phase = Obs.span "sim.dmav_phase"
let c_runs = Obs.counter "sim.runs"
let c_gates = Obs.counter "sim.gates"
let c_dd_gates = Obs.counter "sim.gates_dd"
let c_dmav_gates = Obs.counter "sim.gates_dmav"
let c_conversions = Obs.counter "sim.conversions"

let simulate ?cancel ?pool (cfg : Config.t) (c : Circuit.t) =
  let n = c.Circuit.n in
  let gates = Circuit.num_gates c in
  (* Cooperative cancellation: polled once per gate (and around the
     conversion), never inside a kernel, so the check costs one closure
     call per gate and cancellation latency is one gate application. *)
  let check_cancel =
    match cancel with
    | None -> fun () -> ()
    | Some poll -> fun () -> if poll () then raise Cancelled
  in
  let own_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Pool.create (Int.max 1 cfg.Config.threads) in
  Fun.protect
    ~finally:(fun () -> if own_pool then Pool.shutdown pool)
    (fun () ->
       Obs.incr c_runs;
       Obs.add c_gates gates;
       let p = Dd.create () in
       let monitor = Ewma.create ~beta:cfg.Config.beta ~epsilon:cfg.Config.epsilon in
       let trace = ref [] in
       let record r = if cfg.Config.trace then trace := r :: !trace in
       let peak_mem = ref 0 in
       let bump_mem m = if m > !peak_mem then peak_mem := m in

       (* ---- DD phase ---------------------------------------------- *)
       let state = ref (Vec_dd.zero_state p n) in
       ignore (Ewma.observe monitor (float_of_int n));
       let converted_at = ref None in
       let i = ref 0 in
       let want_convert =
         ref (match cfg.Config.policy with Config.Convert_at k -> k < 0 | _ -> false)
       in
       let (), seconds_dd =
         Obs.timed s_dd_phase (fun () ->
             while !i < gates && not !want_convert do
               check_cancel ();
               let op = c.Circuit.ops.(!i) in
               let (), dt =
                 Timer.time (fun () ->
                     let g = Mat_dd.of_op p ~n op in
                     state := Dd.mv p g !state)
               in
               let size = Dd.vnode_count !state in
               let verdict = Ewma.observe monitor (float_of_int size) in
               (match cfg.Config.policy with
                | Config.Ewma_policy -> if verdict = Ewma.Convert then want_convert := true
                | Config.Convert_at k -> if !i >= k then want_convert := true
                | Config.Never_convert -> ());
               record
                 { index = !i; name = Circuit.op_name op; seconds = dt; phase = Dd_phase;
                   dd_size = size; ewma = Ewma.value monitor; cached = None };
               if cfg.Config.compact_every > 0 && (!i + 1) mod cfg.Config.compact_every = 0
               then begin
                 bump_mem (Dd.memory_bytes p);
                 Dd.compact p ~vroots:[ !state ] ~mroots:[]
               end;
               incr i
             done)
       in
       Obs.add c_dd_gates !i;
       Dd.observe_gauges p;
       bump_mem (Dd.memory_bytes p);

       (* ---- Conversion -------------------------------------------- *)
       let conversion_stats = ref None in
       let flat = ref None in
       let seconds_convert =
         if !want_convert && !i <= gates then begin
           check_cancel ();
           Obs.incr c_conversions;
           let buf_stats, dt =
             Obs.timed s_convert (fun () -> Convert.parallel ~pool ~n !state)
           in
           let buf, stats = buf_stats in
           conversion_stats := Some stats;
           converted_at := Some (!i - 1);
           flat := Some buf;
           record
             { index = !i - 1; name = "dd->array"; seconds = dt;
               phase = Conversion; dd_size = 0; ewma = Ewma.value monitor; cached = None };
           (* The vector DD is dead; keep only what the matrix side reuses. *)
           state := Dd.vzero;
           Dd.compact p ~vroots:[] ~mroots:[];
           dt
         end
         else 0.0
       in

       (* ---- DMAV phase -------------------------------------------- *)
       let cached_gates = ref 0 and uncached_gates = ref 0 and cache_hits = ref 0 in
       let modeled = ref 0.0 in
       let fusion_stats = ref None in
       let seconds_dmav =
         match !flat with
         | None -> 0.0
         | Some buf ->
           let (), dt =
             Obs.timed s_dmav_phase (fun () ->
                 let remaining =
                   Array.to_list (Array.sub c.Circuit.ops !i (gates - !i))
                 in
                 let mats =
                   List.map (fun op -> (Circuit.op_name op, Mat_dd.of_op p ~n op)) remaining
                 in
                 let mats =
                   match cfg.Config.fusion with
                   | Config.No_fusion -> mats
                   | Config.Dmav_aware ->
                     let fused, st = Fusion.dmav_aware p (List.map snd mats) in
                     fusion_stats := Some st;
                     List.map (fun m -> ("fused", m)) fused
                   | Config.K_operations k ->
                     let fused, st = Fusion.k_operations p ~k (List.map snd mats) in
                     fusion_stats := Some st;
                     List.map (fun m -> ("kops", m)) fused
                 in
                 Obs.add c_dmav_gates (List.length mats);
                 let v = ref buf in
                 let w = ref (Buf.create (1 lsl n)) in
                 let ws = Dmav.workspace ~n in
                 let max_buffers = ref 0 in
                 List.iteri
                   (fun j (name, m) ->
                      check_cancel ();
                      let stats = ref None in
                      let (), dt =
                        Timer.time (fun () ->
                            stats :=
                              Some
                                (Dmav.apply ~workspace:ws ~pool
                                   ~simd_width:cfg.Config.simd_width ~n m ~v:!v ~w:!w))
                      in
                      let s = Option.get !stats in
                      if s.Dmav.used_cache then incr cached_gates else incr uncached_gates;
                      cache_hits := !cache_hits + s.Dmav.cache_hits;
                      if s.Dmav.buffers_used > !max_buffers then max_buffers := s.Dmav.buffers_used;
                      modeled := !modeled +. Cost.modeled_macs s.Dmav.decision;
                      record
                        { index = !i + j; name; seconds = dt; phase = Dmav_phase;
                          dd_size = 0; ewma = Ewma.value monitor;
                          cached = Some s.Dmav.used_cache };
                      let tmp = !v in
                      v := !w;
                      w := tmp)
                   mats;
                 flat := Some !v;
                 bump_mem (memory_bytes_flat n ~buffers:!max_buffers + Dd.memory_bytes p))
           in
           Dd.observe_gauges p;
           dt
       in

       let final =
         match !flat with
         | Some buf -> Flat_state buf
         | None -> Dd_state { package = p; edge = !state }
       in
       { n;
         gates;
         final;
         converted_at = !converted_at;
         seconds_total = seconds_dd +. seconds_convert +. seconds_dmav;
         seconds_dd;
         seconds_convert;
         seconds_dmav;
         conversion_stats = !conversion_stats;
         trace = List.rev !trace;
         peak_memory_bytes = !peak_mem;
         dmav_gates_cached = !cached_gates;
         dmav_gates_uncached = !uncached_gates;
         dmav_cache_hits = !cache_hits;
         modeled_macs = !modeled;
         fusion_stats = !fusion_stats })

let amplitudes r =
  match r.final with
  | Flat_state buf -> buf
  | Dd_state { edge; _ } -> Convert.sequential ~n:r.n edge
