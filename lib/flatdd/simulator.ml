(* Thin shim over the engine driver: the hybrid run loop, the conversion
   policy and the per-gate bookkeeping all live in [Driver] (lib/engine);
   this module re-exports the types so existing callers keep compiling and
   pattern-matching against [Simulator]. *)

type phase = Engine.phase = Dd_phase | Conversion | Dmav_phase
type dispatch = Engine.dispatch = Dmav_cached | Dmav_uncached | Dense_direct

exception Cancelled = Driver.Cancelled

type gate_record = Engine.gate_record = {
  index : int;
  name : string;
  seconds : float;
  phase : phase;
  dd_size : int;
  ewma : float;
  cached : bool option;
  dispatch : dispatch option;
}

type final_state = Engine.final_state =
  | Dd_state of { package : Dd.package; edge : Dd.vedge }
  | Flat_state of Buf.t

type result = Driver.result = {
  n : int;
  gates : int;
  final : final_state;
  converted_at : int option;
  seconds_total : float;
  seconds_dd : float;
  seconds_convert : float;
  seconds_dmav : float;
  conversion_stats : Convert.stats option;
  trace : gate_record list;
  peak_memory_bytes : int;
  dmav_gates_cached : int;
  dmav_gates_uncached : int;
  dmav_cache_hits : int;
  modeled_macs : float;
  fusion_stats : Fusion.stats option;
  order : int array option;
}

let memory_bytes_flat = Engine.memory_bytes_flat

let simulate ?cancel ?pool (cfg : Config.t) (c : Circuit.t) =
  Driver.run ?cancel ?pool cfg c

let amplitudes = Driver.amplitudes
let amplitude = Driver.amplitude
