(** DD-to-array state-vector conversion (paper §3.1.2).

    {!sequential} is the DDSIM-style baseline: a single depth-first walk
    multiplying edge weights into a flat buffer.

    {!parallel} implements FlatDD's converter with its two optimizations:

    - {b load balancing}: worker splitting never descends into zero edges,
      so no thread is parked on an empty sub-tree. We split the DD into at
      least [4 × threads] sub-tree tasks drained through an atomic cursor,
      which subsumes the paper's even per-node splitting and also balances
      DDs whose non-zero mass is lopsided;
    - {b scalar multiplication}: when a node's two outgoing edges point to
      the same child, only the low half is converted by DFS; the high half
      is filled afterwards with one SIMD-style block scale by the weight
      ratio. Fills discovered at level [l] depend only on data below
      level [l], so fills are executed level by level, in parallel, after
      the DFS tasks complete. *)

type stats = {
  tasks : int;            (** DFS sub-tree tasks created *)
  fills : int;            (** scalar-multiplication block fills *)
  filled_amplitudes : int;(** amplitudes produced by scaling, not DFS *)
}

val sequential : Dd.package -> n:int -> Dd.vedge -> Buf.t

val parallel : Dd.package -> pool:Pool.t -> n:int -> Dd.vedge -> Buf.t * stats
(** [parallel p ~pool ~n e] converts an [n]-qubit state DD rooted at [e].
    Both walks read the package's raw arena view, so the DD must not be
    mutated (no node construction, no interning) during the conversion. *)

val parallel_ : Dd.package -> pool:Pool.t -> n:int -> Dd.vedge -> Buf.t
(** {!parallel} without the stats. *)
