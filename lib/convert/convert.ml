type stats = {
  tasks : int;
  fills : int;
  filled_amplitudes : int;
}

(* Conversion happens at most once per simulation, so per-run counter
   updates are free; only the split phase counts nodes (the DFS conversion
   itself touches every nonzero amplitude and stays uninstrumented). *)
let c_runs = Obs.counter "convert.runs"
let c_seq_runs = Obs.counter "convert.sequential_runs"
let c_tasks = Obs.counter "convert.tasks"
let c_fills = Obs.counter "convert.fills"
let c_filled = Obs.counter "convert.filled_amplitudes"
let c_split_nodes = Obs.counter "convert.split_nodes_visited"
let s_convert = Obs.span "convert.span"

let sequential ~n e =
  Obs.incr c_seq_runs;
  let buf = Buf.create (1 lsl n) in
  let rec walk (e : Dd.vedge) offset w =
    if not (Dd.vedge_is_zero e) then begin
      let w = Cnum.mul w e.Dd.vw in
      let node = e.Dd.vtgt in
      if node == Dd.vterminal then Buf.set buf offset w
      else begin
        walk node.Dd.v0 offset w;
        walk node.Dd.v1 (offset + (1 lsl node.Dd.vlevel)) w
      end
    end
  in
  walk e 0 Cnum.one;
  buf

(* A DFS task converts the sub-tree under [node] (incoming weight already
   folded into [weight]) into [buf] starting at [offset]. A fill derives
   [len] amplitudes at [dst] by scaling the block at [src]. *)
type task = { t_node : Dd.vnode; t_offset : int; t_weight : Cnum.t }
type fill = { f_src : int; f_dst : int; f_len : int; f_factor : Cnum.t; f_level : int }

let parallel ~pool ~n e =
  Obs.with_span s_convert @@ fun () ->
  let buf = Buf.create (1 lsl n) in
  let threads = Pool.size pool in
  let tasks : task list ref = ref [] in
  let fills : fill list ref = ref [] in
  let n_tasks = ref 0 in
  let split_nodes = ref 0 in
  let target_tasks = Int.max 1 (4 * threads) in
  (* Phase 1 — split the DD into sub-tree tasks. Zero edges are never
     descended into (load balancing) and identical children become fills
     (scalar multiplication), exactly the two cases of Figure 4. *)
  let rec split (node : Dd.vnode) offset weight budget =
    incr split_nodes;
    if node == Dd.vterminal then begin
      tasks := { t_node = node; t_offset = offset; t_weight = weight } :: !tasks;
      incr n_tasks
    end
    else if budget <= 1 then begin
      tasks := { t_node = node; t_offset = offset; t_weight = weight } :: !tasks;
      incr n_tasks
    end
    else begin
      let half = 1 lsl node.Dd.vlevel in
      let e0 = node.Dd.v0 and e1 = node.Dd.v1 in
      match Dd.vedge_is_zero e0, Dd.vedge_is_zero e1 with
      | true, true -> ()
      | false, true -> split e0.Dd.vtgt offset (Cnum.mul weight e0.Dd.vw) budget
      | true, false ->
        split e1.Dd.vtgt (offset + half) (Cnum.mul weight e1.Dd.vw) budget
      | false, false ->
        if e0.Dd.vtgt == e1.Dd.vtgt then begin
          (* High half = (w1/w0) × low half: convert only the low half and
             record a fill at this node's level. *)
          fills :=
            { f_src = offset;
              f_dst = offset + half;
              f_len = half;
              f_factor = Cnum.div e1.Dd.vw e0.Dd.vw;
              f_level = node.Dd.vlevel }
            :: !fills;
          split e0.Dd.vtgt offset (Cnum.mul weight e0.Dd.vw) budget
        end
        else begin
          let b0 = budget / 2 in
          split e0.Dd.vtgt offset (Cnum.mul weight e0.Dd.vw) b0;
          split e1.Dd.vtgt (offset + half) (Cnum.mul weight e1.Dd.vw) (budget - b0)
        end
    end
  in
  if not (Dd.vedge_is_zero e) then
    split e.Dd.vtgt 0 e.Dd.vw target_tasks;
  (* Phase 2 — DFS conversion of the tasks, drained over the pool. Within
     a task the identical-children case is still exploited sequentially
     (convert low half, block-scale the high half). *)
  let task_array = Array.of_list !tasks in
  let rec convert (node : Dd.vnode) offset w =
    if node == Dd.vterminal then Buf.set buf offset w
    else begin
      let half = 1 lsl node.Dd.vlevel in
      let e0 = node.Dd.v0 and e1 = node.Dd.v1 in
      let zero0 = Dd.vedge_is_zero e0 and zero1 = Dd.vedge_is_zero e1 in
      if (not zero0) && (not zero1) && e0.Dd.vtgt == e1.Dd.vtgt then begin
        convert e0.Dd.vtgt offset (Cnum.mul w e0.Dd.vw);
        Buf.scale_into ~src:buf ~src_pos:offset ~dst:buf ~dst_pos:(offset + half)
          ~len:half (Cnum.div e1.Dd.vw e0.Dd.vw)
      end
      else begin
        if not zero0 then convert e0.Dd.vtgt offset (Cnum.mul w e0.Dd.vw);
        if not zero1 then
          convert e1.Dd.vtgt (offset + half) (Cnum.mul w e1.Dd.vw)
      end
    end
  in
  Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:(Array.length task_array) (fun i ->
      let t = task_array.(i) in
      convert t.t_node t.t_offset t.t_weight);
  (* Phase 3 — execute the recorded fills, lowest level first (a fill at
     level l reads only amplitudes produced below level l). Each fill is
     chunked so one huge top-level fill still uses every worker. *)
  let fill_list = List.sort (fun a b -> compare a.f_level b.f_level) !fills in
  let filled = ref 0 in
  List.iter
    (fun f ->
       filled := !filled + f.f_len;
       let chunk = Int.max 4096 (f.f_len / (4 * threads)) in
       Pool.parallel_for_ranges ~chunk pool ~lo:0 ~hi:f.f_len (fun a b ->
           Buf.scale_into ~src:buf ~src_pos:(f.f_src + a) ~dst:buf
             ~dst_pos:(f.f_dst + a) ~len:(b - a) f.f_factor))
    fill_list;
  if Obs.enabled () then begin
    Obs.incr c_runs;
    Obs.add c_tasks (Array.length task_array);
    Obs.add c_fills (List.length fill_list);
    Obs.add c_filled !filled;
    Obs.add c_split_nodes !split_nodes
  end;
  ( buf,
    { tasks = Array.length task_array;
      fills = List.length fill_list;
      filled_amplitudes = !filled } )

let parallel_ ~pool ~n e = fst (parallel ~pool ~n e)
