type stats = {
  tasks : int;
  fills : int;
  filled_amplitudes : int;
}

(* Conversion happens at most once per simulation, so per-run counter
   updates are free; only the split phase counts nodes (the DFS conversion
   itself touches every nonzero amplitude and stays uninstrumented). *)
let c_runs = Obs.counter "convert.runs"
let c_seq_runs = Obs.counter "convert.sequential_runs"
let c_tasks = Obs.counter "convert.tasks"
let c_fills = Obs.counter "convert.fills"
let c_filled = Obs.counter "convert.filled_amplitudes"
let c_split_nodes = Obs.counter "convert.split_nodes_visited"
let s_convert = Obs.span "convert.span"

(* The DFS walks run on the raw arena view: packed child edges and unboxed
   weight planes, no node dereferences. The view stays valid for the whole
   conversion because nothing allocates DD nodes or interns weights here.
   The inline complex multiply matches [Cnum.mul] term for term, so the
   amplitudes are bit-identical to the boxed walk this replaces. *)

let sequential p ~n (e : Dd.vedge) =
  Obs.incr c_seq_runs;
  let buf = Buf.create (1 lsl n) in
  let v = Dd.vview p in
  let rec walk (e : int) offset wre wim =
    if e <> 0 then begin
      let wid = Dd.edge_wid e in
      let er = v.Dd.re.(wid) and ei = v.Dd.im.(wid) in
      let wre' = (wre *. er) -. (wim *. ei)
      and wim' = (wre *. ei) +. (wim *. er) in
      let node = Dd.edge_tgt e in
      if node = 0 then Buf.set2 buf offset wre' wim'
      else begin
        walk v.Dd.ch.(2 * node) offset wre' wim';
        walk v.Dd.ch.((2 * node) + 1)
          (offset + (1 lsl v.Dd.lv.(node)))
          wre' wim'
      end
    end
  in
  walk (e :> int) 0 1.0 0.0;
  buf

(* A DFS task converts the sub-tree under [node] (incoming weight already
   folded into [weight]) into [buf] starting at [offset]. A fill derives
   [len] amplitudes at [dst] by scaling the block at [src]. *)
type task = { t_node : Dd.vnode; t_offset : int; t_weight : Cnum.t }
type fill = { f_src : int; f_dst : int; f_len : int; f_factor : Cnum.t; f_level : int }

let parallel p ~pool ~n (e : Dd.vedge) =
  Obs.with_span s_convert @@ fun () ->
  let buf = Buf.create (1 lsl n) in
  let threads = Pool.size pool in
  let tasks : task list ref = ref [] in
  let fills : fill list ref = ref [] in
  let n_tasks = ref 0 in
  let split_nodes = ref 0 in
  let target_tasks = Int.max 1 (4 * threads) in
  (* Phase 1 — split the DD into sub-tree tasks. Zero edges are never
     descended into (load balancing) and identical children become fills
     (scalar multiplication), exactly the two cases of Figure 4. *)
  let rec split (node : Dd.vnode) offset weight budget =
    incr split_nodes;
    if node = Dd.vterminal then begin
      tasks := { t_node = node; t_offset = offset; t_weight = weight } :: !tasks;
      incr n_tasks
    end
    else if budget <= 1 then begin
      tasks := { t_node = node; t_offset = offset; t_weight = weight } :: !tasks;
      incr n_tasks
    end
    else begin
      let half = 1 lsl Dd.vlevel p node in
      let e0 = Dd.v0 p node and e1 = Dd.v1 p node in
      match Dd.vedge_is_zero e0, Dd.vedge_is_zero e1 with
      | true, true -> ()
      | false, true ->
        split (Dd.vtgt e0) offset (Cnum.mul weight (Dd.vw p e0)) budget
      | true, false ->
        split (Dd.vtgt e1) (offset + half) (Cnum.mul weight (Dd.vw p e1)) budget
      | false, false ->
        if Dd.vtgt e0 = Dd.vtgt e1 then begin
          (* High half = (w1/w0) × low half: convert only the low half and
             record a fill at this node's level. *)
          fills :=
            { f_src = offset;
              f_dst = offset + half;
              f_len = half;
              f_factor = Cnum.div (Dd.vw p e1) (Dd.vw p e0);
              f_level = Dd.vlevel p node }
            :: !fills;
          split (Dd.vtgt e0) offset (Cnum.mul weight (Dd.vw p e0)) budget
        end
        else begin
          let b0 = budget / 2 in
          split (Dd.vtgt e0) offset (Cnum.mul weight (Dd.vw p e0)) b0;
          split (Dd.vtgt e1) (offset + half)
            (Cnum.mul weight (Dd.vw p e1))
            (budget - b0)
        end
    end
  in
  if not (Dd.vedge_is_zero e) then split (Dd.vtgt e) 0 (Dd.vw p e) target_tasks;
  (* Phase 2 — DFS conversion of the tasks, drained over the pool. Within
     a task the identical-children case is still exploited sequentially
     (convert low half, block-scale the high half). Workers share the view
     read-only. *)
  let task_array = Array.of_list !tasks in
  let v = Dd.vview p in
  let rec convert (node : int) offset wre wim =
    if node = 0 then Buf.set2 buf offset wre wim
    else begin
      let half = 1 lsl v.Dd.lv.(node) in
      let e0 = v.Dd.ch.(2 * node) and e1 = v.Dd.ch.((2 * node) + 1) in
      let descend (e : int) offset =
        let wid = Dd.edge_wid e in
        let er = v.Dd.re.(wid) and ei = v.Dd.im.(wid) in
        convert (Dd.edge_tgt e) offset
          ((wre *. er) -. (wim *. ei))
          ((wre *. ei) +. (wim *. er))
      in
      if e0 <> 0 && e1 <> 0 && Dd.edge_tgt e0 = Dd.edge_tgt e1 then begin
        descend e0 offset;
        let w0 = Dd.edge_wid e0 and w1 = Dd.edge_wid e1 in
        (* Inline complex division, term for term the same as [Cnum.div],
           so the scaled half stays bit-identical to the boxed walk. *)
        let bre = v.Dd.re.(w0) and bim = v.Dd.im.(w0) in
        let are = v.Dd.re.(w1) and aim = v.Dd.im.(w1) in
        let d = (bre *. bre) +. (bim *. bim) in
        Buf.scale2_into ~src:buf ~src_pos:offset ~dst:buf ~dst_pos:(offset + half)
          ~len:half
          ~sre:(((are *. bre) +. (aim *. bim)) /. d)
          ~sim:(((aim *. bre) -. (are *. bim)) /. d)
      end
      else begin
        if e0 <> 0 then descend e0 offset;
        if e1 <> 0 then descend e1 (offset + half)
      end
    end
  in
  Pool.parallel_for ~chunk:1 pool ~lo:0 ~hi:(Array.length task_array) (fun i ->
      let t = task_array.(i) in
      convert (Dd.vid t.t_node) t.t_offset t.t_weight.Cnum.re t.t_weight.Cnum.im);
  (* Phase 3 — execute the recorded fills, lowest level first (a fill at
     level l reads only amplitudes produced below level l). Each fill is
     chunked so one huge top-level fill still uses every worker. *)
  let fill_list = List.sort (fun a b -> compare a.f_level b.f_level) !fills in
  let filled = ref 0 in
  List.iter
    (fun f ->
       filled := !filled + f.f_len;
       let chunk = Int.max 4096 (f.f_len / (4 * threads)) in
       Pool.parallel_for_ranges ~chunk pool ~lo:0 ~hi:f.f_len (fun a b ->
           Buf.scale_into ~src:buf ~src_pos:(f.f_src + a) ~dst:buf
             ~dst_pos:(f.f_dst + a) ~len:(b - a) f.f_factor))
    fill_list;
  if Obs.enabled () then begin
    Obs.incr c_runs;
    Obs.add c_tasks (Array.length task_array);
    Obs.add c_fills (List.length fill_list);
    Obs.add c_filled !filled;
    Obs.add c_split_nodes !split_nodes
  end;
  ( buf,
    { tasks = Array.length task_array;
      fills = List.length fill_list;
      filled_amplitudes = !filled } )

let parallel_ p ~pool ~n e = fst (parallel p ~pool ~n e)
