type stats = {
  gates_in : int;
  gates_out : int;
  ddmm_calls : int;
  macs_before : float;
  macs_after : float;
}

let sum_macs p gates =
  List.fold_left (fun acc g -> acc +. Cost.mac_count p g) 0.0 gates

(* "accepted" = a DDMM product was kept as the pending fused gate;
   "rejected" = the product cost more modeled MACs than applying the two
   gates separately, so the pending gate was emitted instead. *)
let c_runs = Obs.counter "fusion.runs"
let c_gates_in = Obs.counter "fusion.gates_in"
let c_gates_out = Obs.counter "fusion.gates_out"
let c_ddmm_calls = Obs.counter "fusion.ddmm_calls"
let c_accepted = Obs.counter "fusion.accepted"
let c_rejected = Obs.counter "fusion.rejected"
let fc_macs_saved = Obs.fcounter "fusion.macs_saved"

let finish p ~gates_in ~ddmm_calls ~macs_before out =
  let st =
    { gates_in;
      gates_out = List.length out;
      ddmm_calls;
      macs_before;
      macs_after = sum_macs p out }
  in
  if Obs.enabled () then begin
    Obs.incr c_runs;
    Obs.add c_gates_in st.gates_in;
    Obs.add c_gates_out st.gates_out;
    Obs.add c_ddmm_calls st.ddmm_calls;
    Obs.fadd fc_macs_saved (st.macs_before -. st.macs_after)
  end;
  (out, st)

let dmav_aware p gates =
  let macs_before = sum_macs p gates in
  let ddmm = ref 0 in
  (* M_p starts as a virtual identity with zero cost: the first real gate
     always "fuses" into it, so the identity itself is never emitted. *)
  let out = ref [] in
  let m_p = ref None in
  let c_p = ref 0.0 in
  List.iter
    (fun m_i ->
       let c_i = Cost.mac_count p m_i in
       match !m_p with
       | None ->
         m_p := Some m_i;
         c_p := c_i
       | Some prev ->
         incr ddmm;
         (* Gates apply left-to-right, so the fused operator is M_i · M_p. *)
         let m_ip = Dd.mm p m_i prev in
         let c_ip = Cost.mac_count p m_ip in
         if c_i +. !c_p < c_ip then begin
           Obs.incr c_rejected;
           out := prev :: !out;
           m_p := Some m_i;
           c_p := c_i
         end
         else begin
           Obs.incr c_accepted;
           m_p := Some m_ip;
           c_p := c_ip
         end)
    gates;
  (* The paper's Algorithm 3 leaves the final pending gate implicit; it
     must be emitted for the product to be complete. *)
  (match !m_p with Some m -> out := m :: !out | None -> ());
  finish p ~gates_in:(List.length gates) ~ddmm_calls:!ddmm ~macs_before
    (List.rev !out)

let k_operations p ~k gates =
  if k < 1 then invalid_arg "Fusion.k_operations: k must be >= 1";
  let macs_before = sum_macs p gates in
  let ddmm = ref 0 in
  let out = ref [] in
  let pending = ref None in
  let count = ref 0 in
  List.iter
    (fun m_i ->
       (match !pending with
        | None ->
          pending := Some m_i;
          count := 1
        | Some prev ->
          incr ddmm;
          Obs.incr c_accepted;
          pending := Some (Dd.mm p m_i prev);
          count := !count + 1);
       if !count = k then begin
         (match !pending with Some m -> out := m :: !out | None -> ());
         pending := None;
         count := 0
       end)
    gates;
  (match !pending with Some m -> out := m :: !out | None -> ());
  finish p ~gates_in:(List.length gates) ~ddmm_calls:!ddmm ~macs_before
    (List.rev !out)
