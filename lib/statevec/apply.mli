(** Gate application on flat state vectors — the array-based engine.

    Gates act by local amplitude manipulation (Equations 2 and 3 of the
    paper): a single-qubit gate on qubit [k] touches each amplitude pair
    that differs only in bit [k]; controls restrict the pairs to indices
    whose control bits are 1. All entry points have a sequential core and
    distribute index ranges over a {!Pool.t} when one of size > 1 is
    given. *)

val single :
  ?pool:Pool.t -> State.t -> Gate.single -> target:int -> controls:int list -> unit
(** In-place application of a (multi-)controlled single-qubit gate. *)

val two : ?pool:Pool.t -> State.t -> Gate.two -> q_hi:int -> q_lo:int -> unit
(** In-place application of a two-qubit unitary; the 4×4 matrix is indexed
    by [2·b(q_hi) + b(q_lo)]. *)

val op : ?pool:Pool.t -> State.t -> Circuit.op -> unit

val circuit : ?pool:Pool.t -> State.t -> Circuit.t -> unit
(** Applies every operation in order. *)

val run : ?pool:Pool.t -> Circuit.t -> State.t
(** [run c] simulates [c] from |0…0⟩ — the "Quantum++" baseline engine.
    For a per-gate timed run, use [Driver.run_engine] over the dense
    engine with [trace] enabled — the timing loop lives in the driver's
    unified trace path, not here. *)
