type t = { n : int; amps : Buf.t }

let zero_state n =
  let amps = Buf.create (1 lsl n) in
  Buf.set amps 0 Cnum.one;
  { n; amps }

let basis_state n i =
  if i < 0 || i >= 1 lsl n then invalid_arg "State.basis_state";
  let amps = Buf.create (1 lsl n) in
  Buf.set amps i Cnum.one;
  { n; amps }

let of_buf n amps =
  if Buf.length amps <> 1 lsl n then invalid_arg "State.of_buf: wrong length";
  { n; amps }

let copy t = { t with amps = Buf.copy t.amps }
let dim t = 1 lsl t.n
let amplitude t i = Buf.get t.amps i
let probability t i =
  let re = Buf.get_re t.amps i and im = Buf.get_im t.amps i in
  (re *. re) +. (im *. im)
let norm2 t = Buf.norm2 t.amps

let renormalize t =
  let s = sqrt (norm2 t) in
  if s > 0.0 then begin
    let inv = Cnum.of_float (1.0 /. s) in
    Buf.scale_into ~src:t.amps ~src_pos:0 ~dst:t.amps ~dst_pos:0
      ~len:(Buf.length t.amps) inv
  end

let probabilities t = Array.init (dim t) (probability t)

let most_likely t =
  let best = ref 0 and best_p = ref (probability t 0) in
  for i = 1 to dim t - 1 do
    let p = probability t i in
    if p > !best_p then begin
      best := i;
      best_p := p
    end
  done;
  (!best, !best_p)

let measure_qubit ?rng t q =
  let rng = match rng with Some r -> r | None -> Rng.create 42 in
  if q < 0 || q >= t.n then invalid_arg "State.measure_qubit";
  let p1 = ref 0.0 in
  for i = 0 to dim t - 1 do
    if Bits.bit i q = 1 then p1 := !p1 +. probability t i
  done;
  let outcome = if Rng.float rng 1.0 < !p1 then 1 else 0 in
  for i = 0 to dim t - 1 do
    if Bits.bit i q <> outcome then Buf.set2 t.amps i 0.0 0.0
  done;
  renormalize t;
  outcome

let expectation_z t q =
  let acc = ref 0.0 in
  for i = 0 to dim t - 1 do
    let p = probability t i in
    acc := !acc +. (if Bits.bit i q = 0 then p else -.p)
  done;
  !acc

let expectation_zz t q1 q2 =
  let acc = ref 0.0 in
  for i = 0 to dim t - 1 do
    let p = probability t i in
    let sign = if Bits.bit i q1 = Bits.bit i q2 then p else -.p in
    acc := !acc +. sign
  done;
  !acc

type pauli = I | X | Y | Z

let pauli_matrix = function
  | I -> Gate.id2
  | X -> Gate.x
  | Y -> Gate.y
  | Z -> Gate.z

(* <psi|P|psi> for one Pauli string: apply P to a copy then take the inner
   product. The apply is a plain sequential single-qubit pass; observables
   are evaluated rarely (examples/tests), not in hot loops. *)
let expectation_string t factors =
  let phi = copy t in
  List.iter
    (fun (q, p) ->
       match p with
       | I -> ()
       | p ->
         let m = pauli_matrix p in
         let m00 = m.(0).(0) and m01 = m.(0).(1) in
         let m10 = m.(1).(0) and m11 = m.(1).(1) in
         let half = dim t / 2 in
         for k = 0 to half - 1 do
           let i0 = Bits.insert_bit k q 0 in
           let i1 = Bits.set_bit i0 q in
           let a0re = Buf.get_re phi.amps i0 and a0im = Buf.get_im phi.amps i0 in
           let a1re = Buf.get_re phi.amps i1 and a1im = Buf.get_im phi.amps i1 in
           Buf.set2 phi.amps i0
             (((m00.Cnum.re *. a0re) -. (m00.Cnum.im *. a0im))
              +. ((m01.Cnum.re *. a1re) -. (m01.Cnum.im *. a1im)))
             (((m00.Cnum.re *. a0im) +. (m00.Cnum.im *. a0re))
              +. ((m01.Cnum.re *. a1im) +. (m01.Cnum.im *. a1re)));
           Buf.set2 phi.amps i1
             (((m10.Cnum.re *. a0re) -. (m10.Cnum.im *. a0im))
              +. ((m11.Cnum.re *. a1re) -. (m11.Cnum.im *. a1im)))
             (((m10.Cnum.re *. a0im) +. (m10.Cnum.im *. a0re))
              +. ((m11.Cnum.re *. a1im) +. (m11.Cnum.im *. a1re)))
         done)
    factors;
  (* Re <psi|phi> — expectation of a Hermitian operator is real. *)
  let re = ref 0.0 in
  for i = 0 to dim t - 1 do
    let are = Buf.get_re t.amps i and aim = Buf.get_im t.amps i in
    let bre = Buf.get_re phi.amps i and bim = Buf.get_im phi.amps i in
    re := !re +. ((are *. bre) +. (aim *. bim))
  done;
  !re

let expectation_pauli t terms =
  List.fold_left (fun acc (c, factors) -> acc +. (c *. expectation_string t factors)) 0.0 terms

module Sampler = struct
  type state = t
  type nonrec t = { cum : float array; total : float }

  let create st =
    let d = dim st in
    let cum = Array.make d 0.0 in
    let acc = ref 0.0 in
    for i = 0 to d - 1 do
      acc := !acc +. probability st i;
      cum.(i) <- !acc
    done;
    { cum; total = !acc }

  let sample t rng =
    let u = Rng.float rng t.total in
    (* Binary search for the first index with cum >= u. *)
    let lo = ref 0 and hi = ref (Array.length t.cum - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cum.(mid) < u then lo := mid + 1 else hi := mid
    done;
    !lo

  let counts t rng ~shots =
    let tbl = Hashtbl.create 64 in
    for _ = 1 to shots do
      let i = sample t rng in
      Hashtbl.replace tbl i (1 + Option.value (Hashtbl.find_opt tbl i) ~default:0)
    done;
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
end
