(* Precision-generic dense gate application (ISSUE 10).

   A functor-body port of the [Apply] kernels over a storage kind
   [P : Storage.S], operating on a bare [P.t] amplitude vector instead of
   a [State.t]. The gate matrices stay f64 [Cnum.t] arrays; all arithmetic
   runs in double and only the stores round at [F32]. The inline complex
   expressions match [Apply] term for term, so [Make (Storage.F64)] is
   bit-identical to the specialized kernels (pinned by tests).

   [Apply] itself stays hand-specialized on [Buf]'s concrete float64
   bigarray — same rationale as [Dmav_generic]: the functor's accessors
   are indirect calls, acceptable for the f32 twin, not as a regression on
   the default path. *)

module Make (P : Storage.S) = struct
  let seq_threshold = 1 lsl 12
  (* Below this many iterations the parallel dispatch overhead dominates;
     run sequentially even when a pool is available. *)

  let zero_state n =
    let amps = P.create (1 lsl n) in
    P.set2 amps 0 1.0 0.0;
    amps

  let single ?pool ~n amps (m : Gate.single) ~target ~controls =
    if target < 0 || target >= n then invalid_arg "Dense_kernel.single: bad target";
    List.iter
      (fun c ->
         if c < 0 || c >= n || c = target then
           invalid_arg "Dense_kernel.single: bad control")
      controls;
    if P.length amps <> 1 lsl n then invalid_arg "Dense_kernel.single: bad length";
    let cmask = Bits.all_masks controls in
    let m00 = m.(0).(0) and m01 = m.(0).(1) and m10 = m.(1).(0) and m11 = m.(1).(1) in
    let u00re = m00.Cnum.re and u00im = m00.Cnum.im in
    let u01re = m01.Cnum.re and u01im = m01.Cnum.im in
    let u10re = m10.Cnum.re and u10im = m10.Cnum.im in
    let u11re = m11.Cnum.re and u11im = m11.Cnum.im in
    let half = 1 lsl (n - 1) in
    let body lo hi =
      for k = lo to hi - 1 do
        let i0 = Bits.insert_bit k target 0 in
        if i0 land cmask = cmask then begin
          let i1 = i0 lor (1 lsl target) in
          let a0re = P.get_re amps i0 and a0im = P.get_im amps i0 in
          let a1re = P.get_re amps i1 and a1im = P.get_im amps i1 in
          P.set2 amps i0
            ((u00re *. a0re) -. (u00im *. a0im)
             +. (u01re *. a1re) -. (u01im *. a1im))
            ((u00re *. a0im) +. (u00im *. a0re)
             +. (u01re *. a1im) +. (u01im *. a1re));
          P.set2 amps i1
            ((u10re *. a0re) -. (u10im *. a0im)
             +. (u11re *. a1re) -. (u11im *. a1im))
            ((u10re *. a0im) +. (u10im *. a0re)
             +. (u11re *. a1im) +. (u11im *. a1re))
        end
      done
    in
    match pool with
    | Some p when Pool.size p > 1 && half >= seq_threshold ->
      Pool.parallel_for_ranges p ~lo:0 ~hi:half body
    | _ -> body 0 half

  let two ?pool ~n amps (m : Gate.two) ~q_hi ~q_lo =
    if q_hi = q_lo || q_hi < 0 || q_lo < 0 || q_hi >= n || q_lo >= n then
      invalid_arg "Dense_kernel.two: bad qubits";
    if P.length amps <> 1 lsl n then invalid_arg "Dense_kernel.two: bad length";
    let k_min = Int.min q_hi q_lo and k_max = Int.max q_hi q_lo in
    let quarter = 1 lsl (n - 2) in
    let mre = Array.make 16 0.0 and mim = Array.make 16 0.0 in
    for r = 0 to 3 do
      for c = 0 to 3 do
        mre.((4 * r) + c) <- m.(r).(c).Cnum.re;
        mim.((4 * r) + c) <- m.(r).(c).Cnum.im
      done
    done;
    let body lo hi =
      let are = Array.make 4 0.0 and aim = Array.make 4 0.0 in
      let idx = Array.make 4 0 in
      for k = lo to hi - 1 do
        let base = Bits.insert_bit2 k k_min 0 k_max 0 in
        (* Matrix row/col index is 2·b(q_hi) + b(q_lo). *)
        idx.(0) <- base;
        idx.(1) <- base lor (1 lsl q_lo);
        idx.(2) <- base lor (1 lsl q_hi);
        idx.(3) <- base lor (1 lsl q_hi) lor (1 lsl q_lo);
        for r = 0 to 3 do
          let i = idx.(r) in
          are.(r) <- P.get_re amps i;
          aim.(r) <- P.get_im amps i
        done;
        for r = 0 to 3 do
          let accre = ref 0.0 and accim = ref 0.0 in
          for c = 0 to 3 do
            let ure = mre.((4 * r) + c) and uim = mim.((4 * r) + c) in
            let xre = are.(c) and xim = aim.(c) in
            accre := !accre +. ((ure *. xre) -. (uim *. xim));
            accim := !accim +. ((ure *. xim) +. (uim *. xre))
          done;
          P.set2 amps idx.(r) !accre !accim
        done
      done
    in
    match pool with
    | Some p when Pool.size p > 1 && quarter >= seq_threshold ->
      Pool.parallel_for_ranges p ~lo:0 ~hi:quarter body
    | _ -> body 0 quarter

  let op ?pool ~n amps (o : Circuit.op) =
    match o with
    | Circuit.Single { matrix; target; controls; _ } ->
      single ?pool ~n amps matrix ~target ~controls
    | Circuit.Two { matrix; q_hi; q_lo; _ } -> two ?pool ~n amps matrix ~q_hi ~q_lo

  let circuit ?pool amps (c : Circuit.t) =
    if P.length amps <> 1 lsl c.Circuit.n then
      invalid_arg "Dense_kernel.circuit: qubit count mismatch";
    Array.iter (op ?pool ~n:c.Circuit.n amps) c.Circuit.ops

  let run ?pool (c : Circuit.t) =
    let amps = zero_state c.Circuit.n in
    circuit ?pool amps c;
    amps
end
