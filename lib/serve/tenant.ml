(* Deficit round robin over per-tenant FIFO queues.

   Each tenant owns a queue of weighted payloads (cost = gate count). The
   picker walks the ring; every visit to a non-empty queue tops the
   tenant's deficit up by [quantum], and the head job dispatches once its
   cost fits in the deficit. A tenant that drains its queue forfeits the
   leftover deficit, so an idle tenant cannot bank credit while others
   work — the classic DRR fairness invariant.

   The structure is NOT internally synchronized: the serve core already
   holds one mutex across admission, picking and completion, and a second
   lock here would only invite ordering bugs (see qcs_lint's
   mutex-discipline rule — one lock per shared structure, held in one
   place). *)

let c_admitted = Obs.counter "serve.admitted"
let c_rejected = Obs.counter "serve.rejected"
let g_depth = Obs.gauge "serve.queue_depth"

type 'a entry = { cost : int; payload : 'a }

type 'a tenant_state = {
  name : string;
  queue : 'a entry Queue.t;
  mutable deficit : int;
  mutable inflight : int;
}

type 'a t = {
  quantum : int;
  quota : int; (* max queued+inflight per tenant; 0 = unlimited *)
  mutable ring : 'a tenant_state list; (* rotates; next pick starts at head *)
  mutable depth : int;
}

let create ?(quantum = 64) ?(quota = 0) () =
  { quantum = max 1 quantum; quota; ring = []; depth = 0 }

let state t name =
  match List.find_opt (fun s -> String.equal s.name name) t.ring with
  | Some s -> s
  | None ->
    let s = { name; queue = Queue.create (); deficit = 0; inflight = 0 } in
    t.ring <- t.ring @ [ s ];
    s

let offer ?(force = false) t ~tenant ~cost payload =
  let s = state t tenant in
  let load = Queue.length s.queue + s.inflight in
  if (not force) && t.quota > 0 && load >= t.quota then begin
    Obs.incr c_rejected;
    Error
      (Printf.sprintf "tenant %S over quota (%d jobs queued or running, quota %d)"
         tenant load t.quota)
  end
  else begin
    Queue.add { cost = max 1 cost; payload } s.queue;
    t.depth <- t.depth + 1;
    Obs.set_gauge g_depth t.depth;
    Obs.incr c_admitted;
    Ok ()
  end

(* DRR pick: rotate through the ring, refilling deficits as we go, until
   some head becomes affordable. [None] means every queue is empty — a
   single pass may refuse every head (cost above this round's credit),
   but each pass grows every non-empty queue's deficit by [quantum], so
   with work queued a pick lands within ceil(max cost / quantum) passes.
   Returning None early here would strand jobs: the serve core only pumps
   on admission and completion, and a quiet daemon (e.g. one replaying a
   journal at startup) would never ask again. *)
let next t =
  let n = List.length t.ring in
  let rec scan i =
    if i >= n then None
    else
      match t.ring with
      | [] -> None
      | s :: rest ->
        if Queue.is_empty s.queue then begin
          (* Empty queue forfeits its credit; rotate past it. *)
          s.deficit <- 0;
          t.ring <- rest @ [ s ];
          scan (i + 1)
        end
        else begin
          s.deficit <- s.deficit + t.quantum;
          let head = Queue.peek s.queue in
          if head.cost <= s.deficit then begin
            ignore (Queue.pop s.queue);
            s.deficit <- s.deficit - head.cost;
            if Queue.is_empty s.queue then s.deficit <- 0;
            s.inflight <- s.inflight + 1;
            t.depth <- t.depth - 1;
            Obs.set_gauge g_depth t.depth;
            (* Rotate so the next pick starts after this tenant. *)
            t.ring <- rest @ [ s ];
            Some (s.name, head.payload)
          end
          else begin
            t.ring <- rest @ [ s ];
            scan (i + 1)
          end
        end
  in
  let rec drive () =
    if t.depth = 0 then None
    else match scan 0 with Some pick -> Some pick | None -> drive ()
  in
  drive ()

let finish t ~tenant =
  match List.find_opt (fun s -> String.equal s.name tenant) t.ring with
  | Some s -> s.inflight <- max 0 (s.inflight - 1)
  | None -> ()

let pending t = t.depth

let inflight t =
  List.fold_left (fun acc s -> acc + s.inflight) 0 t.ring

let tenants t = List.map (fun s -> s.name) t.ring
