(* The serve wire protocol: newline-delimited JSON in both directions over
   a Unix-domain stream socket, schema [qcs_serve/v1].

   Client → server lines are either control objects carrying an "op" field
   or job objects — exactly the qcs_sched/v1 manifest line schema (plus
   "tenant"/"seed"/"schema"), so a manifest file IS the request stream.
   Server → client lines are frames tagged by a "frame" field. Result
   frames carry the qcs_sched/v1 result line as an escaped string, so the
   client recovers the byte-exact line a local flatdd_batch run would have
   written. *)

exception Error of string

let schema = "qcs_serve/v1"

let failf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* --- JSON helpers over the Obs.Metrics parser ------------------------- *)

open Obs.Metrics

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Re-render a parsed JSON value on one line. Numbers round-trip exactly
   ([Jnum] keeps the source digits), so pinning a field into a manifest
   line never perturbs the ones already there. *)
let rec render_jv b = function
  | Jnull -> Buffer.add_string b "null"
  | Jbool v -> Buffer.add_string b (if v then "true" else "false")
  | Jnum s -> Buffer.add_string b s
  | Jstr s ->
    Buffer.add_char b '"';
    Buffer.add_string b (json_escape s);
    Buffer.add_char b '"'
  | Jarr vs ->
    Buffer.add_char b '[';
    List.iteri
      (fun i v ->
         if i > 0 then Buffer.add_char b ',';
         render_jv b v)
      vs;
    Buffer.add_char b ']'
  | Jobj kvs ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char b ',';
         Buffer.add_char b '"';
         Buffer.add_string b (json_escape k);
         Buffer.add_string b "\":";
         render_jv b v)
      kvs;
    Buffer.add_char b '}'

let render_obj kvs =
  let b = Buffer.create 128 in
  render_jv b (Jobj kvs);
  Buffer.contents b

(* [set_field kvs k v] replaces [k] in place or appends it, keeping the
   original key order — stored journal lines stay diffable against what
   the client sent. *)
let set_field kvs k v =
  if List.mem_assoc k kvs then
    List.map (fun (k', v') -> if String.equal k' k then (k', v) else (k', v')) kvs
  else kvs @ [ (k, v) ]

let one_line s =
  String.concat "" (String.split_on_char '\n' s)

(* --- server → client frames ------------------------------------------- *)

type frame =
  | Hello of { server : string }
  | Accepted of { id : string; seed : int; replay : bool }
  | Rejected of { id : string option; reason : string }
  | Result of { id : string; line : string }
  | Metrics of { body : string } (* compact qcs_obs/v1 JSON text *)
  | Pong
  | Bye of { results : int }

let render_frame f =
  let b = Buffer.create 128 in
  let tag name = Buffer.add_string b (Printf.sprintf "{\"frame\":\"%s\"" name) in
  (match f with
   | Hello { server } ->
     tag "hello";
     Buffer.add_string b
       (Printf.sprintf ",\"schema\":\"%s\",\"server\":\"%s\"" schema (json_escape server))
   | Accepted { id; seed; replay } ->
     tag "accepted";
     Buffer.add_string b
       (Printf.sprintf ",\"id\":\"%s\",\"seed\":%d,\"replay\":%b" (json_escape id) seed replay)
   | Rejected { id; reason } ->
     tag "rejected";
     Buffer.add_string b
       (Printf.sprintf ",\"id\":%s,\"reason\":\"%s\""
          (match id with None -> "null" | Some id -> "\"" ^ json_escape id ^ "\"")
          (json_escape reason))
   | Result { id; line } ->
     tag "result";
     Buffer.add_string b
       (Printf.sprintf ",\"id\":\"%s\",\"line\":\"%s\"" (json_escape id) (json_escape line))
   | Metrics { body } ->
     tag "metrics";
     Buffer.add_string b ",\"body\":";
     Buffer.add_string b (one_line body)
   | Pong -> tag "pong"
   | Bye { results } ->
     tag "bye";
     Buffer.add_string b (Printf.sprintf ",\"results\":%d" results));
  Buffer.add_char b '}';
  Buffer.contents b

let parse_frame line =
  let kvs =
    match parse_json line with
    | Jobj kvs -> kvs
    | _ -> failf "frame is not a JSON object"
    | exception Parse_error m -> failf "bad frame: %s" m
  in
  let str k =
    match List.assoc_opt k kvs with
    | Some (Jstr s) -> s
    | _ -> failf "frame missing string field %S" k
  in
  let int k =
    match List.assoc_opt k kvs with
    | Some (Jnum s) ->
      (match int_of_string_opt s with
       | Some v -> v
       | None -> failf "frame field %S is not an integer" k)
    | _ -> failf "frame missing integer field %S" k
  in
  match List.assoc_opt "frame" kvs with
  | Some (Jstr "hello") -> Hello { server = str "server" }
  | Some (Jstr "accepted") ->
    let replay =
      match List.assoc_opt "replay" kvs with Some (Jbool v) -> v | _ -> false
    in
    Accepted { id = str "id"; seed = int "seed"; replay }
  | Some (Jstr "rejected") ->
    let id = match List.assoc_opt "id" kvs with Some (Jstr s) -> Some s | _ -> None in
    Rejected { id; reason = str "reason" }
  | Some (Jstr "result") -> Result { id = str "id"; line = str "line" }
  | Some (Jstr "metrics") ->
    let body =
      match List.assoc_opt "body" kvs with
      | Some v ->
        let b = Buffer.create 256 in
        render_jv b v;
        Buffer.contents b
      | None -> failf "metrics frame without body"
    in
    Metrics { body }
  | Some (Jstr "pong") -> Pong
  | Some (Jstr "bye") -> Bye { results = int "results" }
  | Some (Jstr other) -> failf "unknown frame %S" other
  | _ -> failf "line has no \"frame\" field"

(* --- client → server requests ----------------------------------------- *)

type request =
  | Hello_req of { timings : bool; metrics : bool; tenant : string option }
  | Job of string (* raw manifest line *)
  | Metrics_req
  | Ping
  | End_req

let render_request = function
  | Hello_req { timings; metrics; tenant } ->
    Printf.sprintf "{\"op\":\"hello\",\"timings\":%b,\"metrics\":%b%s}" timings metrics
      (match tenant with
       | None -> ""
       | Some t -> Printf.sprintf ",\"tenant\":\"%s\"" (json_escape t))
  | Job line -> line
  | Metrics_req -> "{\"op\":\"metrics\"}"
  | Ping -> "{\"op\":\"ping\"}"
  | End_req -> "{\"op\":\"end\"}"

(* A request line is a control object iff it parses as JSON and carries an
   "op" field; anything else is handed to the manifest parser verbatim, so
   manifest-side errors keep their own (better) messages. *)
let parse_request line =
  match parse_json line with
  | exception Parse_error _ -> Job line
  | Jobj kvs ->
    (match List.assoc_opt "op" kvs with
     | Some (Jstr "hello") ->
       let flag k default =
         match List.assoc_opt k kvs with Some (Jbool v) -> v | _ -> default
       in
       let tenant =
         match List.assoc_opt "tenant" kvs with Some (Jstr s) -> Some s | _ -> None
       in
       Hello_req { timings = flag "timings" true; metrics = flag "metrics" false; tenant }
     | Some (Jstr "metrics") -> Metrics_req
     | Some (Jstr "ping") -> Ping
     | Some (Jstr "end") -> End_req
     | Some (Jstr other) -> failf "unknown op %S" other
     | Some _ -> failf "\"op\" must be a string"
     | None -> Job line)
  | _ -> Job line
