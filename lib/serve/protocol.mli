(** The qcs_serve/v1 wire protocol: JSONL both ways over a Unix socket.

    Requests are qcs_sched/v1 manifest lines (a manifest file is a valid
    request stream) or control objects with an ["op"] field; responses are
    frames tagged by ["frame"]. Result frames embed the byte-exact
    qcs_sched/v1 result line as an escaped string so a remote client can
    reconstruct exactly what a local [flatdd_batch] run would have
    written. *)

exception Error of string

val schema : string
(** ["qcs_serve/v1"]. *)

val json_escape : string -> string

val render_obj : (string * Obs.Metrics.jv) list -> string
(** One-line rendering of a flat/nested JSON object; [Jnum] values keep
    their source digits, so re-rendering never perturbs numbers. *)

val set_field :
  (string * Obs.Metrics.jv) list -> string -> Obs.Metrics.jv ->
  (string * Obs.Metrics.jv) list
(** Replace-or-append preserving key order (used to pin "id"/"seed" into
    a manifest line before journaling or shipping it). *)

val one_line : string -> string
(** Strips newlines (turns the pretty qcs_obs JSON into a JSONL-safe
    payload). *)

type frame =
  | Hello of { server : string }
  | Accepted of { id : string; seed : int; replay : bool }
      (** [replay]: the job had already completed in a previous daemon
          life; its stored result follows immediately. *)
  | Rejected of { id : string option; reason : string }
  | Result of { id : string; line : string }
  | Metrics of { body : string }  (** compact qcs_obs/v1 snapshot JSON *)
  | Pong
  | Bye of { results : int }

val render_frame : frame -> string
(** One line, no trailing newline. *)

val parse_frame : string -> frame
(** @raise Error on malformed frames. *)

type request =
  | Hello_req of { timings : bool; metrics : bool; tenant : string option }
      (** Per-connection options: [timings] selects timing fields in
          result lines (off = byte-deterministic), [metrics] streams a
          delta metrics frame after every result, [tenant] is the default
          tenant for job lines that carry none. *)
  | Job of string
  | Metrics_req
  | Ping
  | End_req

val render_request : request -> string

val parse_request : string -> request
(** Control objects (with ["op"]) are parsed strictly; anything else —
    including unparseable text — is returned as {!Job} verbatim so the
    manifest parser owns its error messages.
    @raise Error on a malformed control object. *)
