(** Crash-safe accepted-job journal (schema [qcs_serve_journal/v1]).

    One entry per accepted job, in accept order, holding the {e pinned}
    manifest line (explicit ["id"] and ["seed"] baked in) and, once the
    job finishes, its canonical timings-off result line. Every mutation
    rewrites the file through {!Obs.atomic_write_file}, so a [kill -9]
    at any instant leaves a complete journal — the restarted daemon
    re-runs every [Pending] entry and replays [Done] results verbatim,
    giving exactly-once results over at-least-once submission.

    Each mutation first compacts the journal to every pending entry plus
    a bounded tail of the newest completed ones, so the rewrite cost is
    O(pending + done_tail) instead of O(jobs ever accepted). A resubmit
    of an id older than the tail re-runs its pinned line (same bytes)
    rather than replaying the stored result; pending entries are never
    dropped.

    Not internally synchronized; the serve core's mutex guards it. *)

exception Error of string

type state = Pending | Done of string  (** canonical result line *)

type entry = {
  e_id : string;
  e_tenant : string;
  e_seed : int;
  e_line : string;  (** pinned manifest line, replayable at any index *)
  mutable e_state : state;
}

type t

val create : ?path:string -> ?done_tail:int -> base_seed:int -> unit -> t
(** Opens (and replays) [path] if it exists; without [path] the journal
    is memory-only (durability off, same API — the done-tail bound then
    caps the daemon's memory instead of the file). Restored entries
    count [serve.journal.restored]; [done_tail] (default 1024, [>= 0])
    bounds how many completed entries are retained, counted by
    [serve.journal.compactions] / [serve.journal.dropped_done].
    @raise Error if an existing file is malformed or was written with a
    different [base_seed], or if [done_tail < 0]. *)

val take_index : t -> int
(** Allocate the next derivation index for a fresh accept (monotonic
    across restarts — persisted in the header so a restarted daemon
    never re-derives a seed already handed out). *)

val accept : t -> id:string -> tenant:string -> seed:int -> line:string -> entry
(** Record an accepted job and flush. Counts [serve.journal.writes].
    @raise Error on duplicate id. *)

val complete : t -> id:string -> result:string -> unit
(** Mark [id] done with its canonical result line and flush. Only call
    for terminal outcomes — a job cancelled by daemon shutdown stays
    [Pending] so the restart re-runs it.
    @raise Error on unknown id. *)

val find : t -> string -> entry option

val pending : t -> entry list
(** Pending entries, in accept order. *)

val done_results : t -> (string * string) list
(** [(id, canonical result line)] for retained done entries, in accept
    order (entries beyond the done-tail have been compacted away). *)

val size : t -> int
(** Retained entries (pending + done-tail), not total ever accepted. *)

val base_seed : t -> int
