(** Crash-safe accepted-job journal (schema [qcs_serve_journal/v1]).

    One entry per accepted job, in accept order, holding the {e pinned}
    manifest line (explicit ["id"] and ["seed"] baked in) and, once the
    job finishes, its canonical timings-off result line. Every mutation
    rewrites the file through {!Obs.atomic_write_file}, so a [kill -9]
    at any instant leaves a complete journal — the restarted daemon
    re-runs every [Pending] entry and replays [Done] results verbatim,
    giving exactly-once results over at-least-once submission.

    Not internally synchronized; the serve core's mutex guards it. *)

exception Error of string

type state = Pending | Done of string  (** canonical result line *)

type entry = {
  e_id : string;
  e_tenant : string;
  e_seed : int;
  e_line : string;  (** pinned manifest line, replayable at any index *)
  mutable e_state : state;
}

type t

val create : ?path:string -> base_seed:int -> unit -> t
(** Opens (and replays) [path] if it exists; without [path] the journal
    is memory-only (durability off, same API). Restored entries count
    [serve.journal.restored].
    @raise Error if an existing file is malformed or was written with a
    different [base_seed]. *)

val take_index : t -> int
(** Allocate the next derivation index for a fresh accept (monotonic
    across restarts — persisted in the header so a restarted daemon
    never re-derives a seed already handed out). *)

val accept : t -> id:string -> tenant:string -> seed:int -> line:string -> entry
(** Record an accepted job and flush. Counts [serve.journal.writes].
    @raise Error on duplicate id. *)

val complete : t -> id:string -> result:string -> unit
(** Mark [id] done with its canonical result line and flush. Only call
    for terminal outcomes — a job cancelled by daemon shutdown stays
    [Pending] so the restart re-runs it.
    @raise Error on unknown id. *)

val find : t -> string -> entry option

val pending : t -> entry list
(** Pending entries, in accept order. *)

val done_results : t -> (string * string) list
(** [(id, canonical result line)] for done entries, in accept order. *)

val size : t -> int
val base_seed : t -> int
