(** Client side of the serve protocol.

    {!run_manifest} is what [flatdd_batch --connect] uses: it parses the
    manifest {e locally} — fixing each job's id and derived seed by
    physical line index, exactly as a local run would — ships every line
    with ["id"]/["seed"] pinned (and relative ["qasm"] paths
    absolutized), and collects the streamed results. Because identity is
    pinned client-side, the returned lines are byte-identical to a local
    [flatdd_batch] run of the same manifest (timings off), no matter how
    other tenants' jobs interleave in the daemon. *)

exception Error of string

type connection

val connect : ?retry_for:float -> socket_path:string -> unit -> connection
(** Connects and waits for the daemon's hello greeting (which {!connect}
    consumes — the first {!read_frame} sees the frame after it).
    [retry_for] keeps retrying [ECONNREFUSED]/[ENOENT] — and a
    connection reset or closed before the greeting, which is what a
    connect racing a daemon restart observes — for that many seconds
    (50 ms backoff). Default [0.0]: fail immediately. *)

val greeting : connection -> string
(** The server identification string from the handshake hello frame. *)

val send_request : connection -> Protocol.request -> unit
val read_frame : connection -> Protocol.frame
(** @raise Error on EOF, {!Protocol.Error} on a malformed frame. *)

val close : connection -> unit

val pin_line : dir:string -> ?tenant:string -> Manifest.resolved -> string -> string
(** [pin_line ~dir r raw] bakes [r]'s id, seed and effective [dd_domains]
    (and [tenant], when given and absent from the line) into the raw
    manifest line and absolutizes a relative qasm path against [dir]
    (prefixing the cwd only when [dir] itself is relative). *)

val load_pinned :
  ?default_config:Config.t ->
  ?base_seed:int ->
  ?strict:bool ->
  ?tenant:string ->
  string ->
  (Manifest.resolved * string) list
(** Parses a manifest file exactly as [Manifest.load] would — physical
    line indices, blank/comment skipping, the same duplicate-id error —
    and returns each resolved job with its {!pin_line}d wire line.
    @raise Error (line-numbered) on a duplicate job id;
    [Manifest.Error] on a line that does not parse. *)

val run_manifest :
  ?default_config:Config.t ->
  ?base_seed:int ->
  ?strict:bool ->
  ?tenant:string ->
  ?timings:bool ->
  ?retry_for:float ->
  socket_path:string ->
  string ->
  (Manifest.resolved * string) list
(** Runs a whole manifest file against the daemon at [socket_path];
    returns result lines in {e manifest} order. [~timings:false] asks
    the daemon for the canonical byte-deterministic lines.
    @raise Error on rejection, missing results, or protocol trouble;
    [Manifest.Error] on local parse failure (line-numbered). *)
