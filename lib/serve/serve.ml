(* The serve core: one daemon instance — listener, per-connection reader
   threads, tenant-fair admission, warm-state execution, crash-safe
   journal, streamed delivery.

   Concurrency shape: one mutex ([t.mutex]) guards every piece of shared
   daemon state (DRR queues, journal, owner/handle tables, inflight
   count). Readers and scheduler runner domains both funnel through it.
   Socket I/O never happens under it: [send] only enqueues the rendered
   frame under the connection's own mutex (lock order: t.mutex →
   conn.mutex, never the other way) and each connection's writer thread
   drains the queue with no locks held — a client that stops reading
   backs up its own queue, never the daemon's admission or delivery.

   Determinism: jobs execute with journal-pinned ids and seeds, gated
   into the scheduler one slot at a time ([inflight < slots]) so the DRR
   picker — not the scheduler's priority queue — decides order, and each
   runs on a Warm handle whose package was [Dd.reset] (bit-identical to a
   cold run). The canonical timings-off result line is rendered before
   the handle is released and stored in the journal, so a resubmitted or
   replayed id returns byte-identical text in any daemon life. *)

let g_uptime = Obs.gauge "serve.uptime_s"
let c_connections = Obs.counter "serve.connections"
let c_results = Obs.counter "serve.results"
let c_replays = Obs.counter "serve.replays"

type config = {
  socket_path : string;
  slots : int;            (* concurrently running jobs *)
  pool_threads : int;     (* shared data-parallel pool size *)
  base_seed : int;
  journal_path : string option;
  journal_tail : int;     (* completed journal entries retained *)
  quantum : int;          (* DRR quantum, in gates *)
  quota : int;            (* per-tenant queued+running bound; 0 = none *)
  warm_capacity : int;
  default_config : Config.t;
  strict : bool;          (* reject unknown manifest fields *)
  log : string -> unit;
}

let default_config =
  { socket_path = "flatdd.sock";
    slots = 2;
    pool_threads = 2;
    base_seed = 1;
    journal_path = None;
    journal_tail = 1024;
    quantum = 64;
    quota = 0;
    warm_capacity = 8;
    default_config = Config.default;
    strict = false;
    log = ignore }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_oc : out_channel;
  c_mutex : Mutex.t;
  c_cond : Condition.t;       (* wakes the writer: queue grew or conn died *)
  c_outq : string Queue.t;    (* rendered frames awaiting the writer thread *)
  mutable c_alive : bool;
  mutable c_timings : bool;   (* include *_s fields in delivered lines *)
  mutable c_metrics : bool;   (* stream a metrics delta after each result *)
  mutable c_tenant : string option; (* default tenant for bare job lines *)
  mutable c_outstanding : int; (* accepted, result not yet delivered *)
  mutable c_delivered : int;
  mutable c_ended : bool;     (* saw the end op; Bye when outstanding = 0 *)
}

type t = {
  cfg : config;
  mutex : Mutex.t;
  pool : Pool.t;
  warm : Warm.t;
  journal : Journal.t;
  drr : Sched.job Tenant.t;
  mutable sched : Sched.t option; (* set once in [create] *)
  owners : (string, conn) Hashtbl.t;    (* job id → owning connection *)
  handles : (string, Warm.handle) Hashtbl.t; (* job id → in-use warm handle *)
  mutable inflight : int;
  mutable completed : int;
  mutable conns : conn list;
  mutable next_conn : int;
  mutable last_snap : Obs.Metrics.snapshot;
  started_at : float;
  stop : bool Atomic.t;
}

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let sched t = Option.get t.sched

let logf t fmt = Printf.ksprintf t.cfg.log fmt

let touch_uptime t =
  Obs.set_gauge g_uptime (int_of_float (Unix.gettimeofday () -. t.started_at))

(* --- connection writes ------------------------------------------------- *)

(* Flip a connection dead exactly once. The flipper closes the fd and
   wakes the writer so it can exit; everyone else observes
   [c_alive = false] and stands down. *)
let kill conn =
  Mutex.lock conn.c_mutex;
  let was = conn.c_alive in
  conn.c_alive <- false;
  Condition.broadcast conn.c_cond;
  Mutex.unlock conn.c_mutex;
  if was then (try Unix.close conn.c_fd with Unix.Unix_error _ -> ())

(* Enqueue a frame for the connection's writer thread. Never touches the
   socket: callers hold t.mutex, and a client that stops reading (full
   socket buffer, blocked flush) must not be able to stall admission,
   delivery or completion for every other tenant. *)
let send conn frame =
  Mutex.lock conn.c_mutex;
  if conn.c_alive then begin
    Queue.push (Protocol.render_frame frame) conn.c_outq;
    Condition.signal conn.c_cond
  end;
  Mutex.unlock conn.c_mutex

(* Per-connection writer: drains the queue with no locks held. A write
   failure (client went away mid-stream) just kills the connection; its
   jobs keep running and their results stay readable through the
   journal. *)
let writer conn =
  let rec loop () =
    Mutex.lock conn.c_mutex;
    while conn.c_alive && Queue.is_empty conn.c_outq do
      Condition.wait conn.c_cond conn.c_mutex
    done;
    if not conn.c_alive then begin
      Queue.clear conn.c_outq;
      Mutex.unlock conn.c_mutex
    end
    else begin
      let b = Buffer.create 256 in
      while not (Queue.is_empty conn.c_outq) do
        Buffer.add_string b (Queue.pop conn.c_outq);
        Buffer.add_char b '\n'
      done;
      Mutex.unlock conn.c_mutex;
      (try
         output_string conn.c_oc (Buffer.contents b);
         flush conn.c_oc
       with Sys_error _ | Unix.Unix_error _ -> kill conn);
      loop ()
    end
  in
  loop ()

(* --- admission --------------------------------------------------------- *)

let terminal (outcome : Sched.outcome) =
  match outcome with
  | Sched.Completed _ | Sched.Failed _ | Sched.Timed_out -> true
  | Sched.Cancelled -> false (* daemon stopping: stays Pending, re-runs *)

(* Submit ready DRR picks into the scheduler while slots are free. The
   scheduler has exactly [slots] runner domains and we never hand it more
   than [inflight <= slots] jobs, so its internal priority queue never
   holds a choice — the DRR picker fully controls execution order. *)
let pump_locked t =
  let rec go () =
    if (not (Atomic.get t.stop)) && t.inflight < t.cfg.slots then
      match Tenant.next t.drr with
      | None -> ()
      | Some (_tenant, job) ->
        t.inflight <- t.inflight + 1;
        Sched.submit (sched t) job;
        go ()
  in
  go ()

let bare_id kvs =
  match List.assoc_opt "id" kvs with
  | Some (Obs.Metrics.Jstr s) -> Some s
  | _ -> None

let bare_seed kvs =
  match List.assoc_opt "seed" kvs with
  | Some (Obs.Metrics.Jnum s) -> int_of_string_opt s
  | _ -> None

let admit t conn line =
  match Obs.Metrics.parse_json line with
  | exception Obs.Metrics.Parse_error m ->
    send conn (Protocol.Rejected { id = None; reason = "bad job line: " ^ m })
  | Obs.Metrics.Jobj kvs ->
    locked t (fun () ->
        (* Pin identity first: an id/seed the client did not choose is
           derived from the journal's monotonic index, then baked into
           the stored line so a restart replays it bit-for-bit. *)
        let index =
          match bare_id kvs, bare_seed kvs with
          | Some _, Some _ -> 0 (* fully pinned by the client *)
          | _ -> Journal.take_index t.journal
        in
        let id =
          match bare_id kvs with
          | Some id -> id
          | None -> Printf.sprintf "job-%d" index
        in
        (* The pinned rendering of THIS submission under a given seed:
           stored on a fresh accept, and compared against the journal's
           stored line on an id hit — replay and adoption are for the
           same job only, never for whoever reuses the id next. *)
        let pinned_with seed =
          let kvs = Protocol.set_field kvs "id" (Obs.Metrics.Jstr id) in
          let kvs =
            Protocol.set_field kvs "seed" (Obs.Metrics.Jnum (string_of_int seed))
          in
          let kvs =
            match List.assoc_opt "tenant" kvs, conn.c_tenant with
            | None, Some tenant ->
              Protocol.set_field kvs "tenant" (Obs.Metrics.Jstr tenant)
            | _ -> kvs
          in
          Protocol.render_obj kvs
        in
        match Journal.find t.journal id with
        | Some e
          when not
                 (String.equal
                    (pinned_with (Option.value (bare_seed kvs) ~default:e.Journal.e_seed))
                    e.Journal.e_line) ->
          (* Same id, different job line (payload, seed or tenant).
             Auto-generated ids collide exactly like this — two un-id'd
             manifests both pin job-0 — and replaying the stored result
             would hand this submitter another job's bytes. *)
          send conn
            (Protocol.Rejected
               { id = Some id;
                 reason =
                   Printf.sprintf
                     "id %S is already bound to a different job line; give jobs \
                      explicit distinct ids" id })
        | Some { Journal.e_state = Journal.Done result; e_seed; _ } ->
          (* Finished in this or a previous daemon life: replay the
             stored canonical line — exactly-once results over
             at-least-once submission. *)
          Obs.incr c_replays;
          send conn (Protocol.Accepted { id; seed = e_seed; replay = true });
          send conn (Protocol.Result { id; line = result });
          conn.c_delivered <- conn.c_delivered + 1
        | Some { Journal.e_state = Journal.Pending; e_seed; _ } ->
          (* Accepted earlier (possibly by a dead connection or a
             previous life): adopt it — this connection now receives the
             result when it lands. The previous owner, if any, is
             released from waiting on it. *)
          (match Hashtbl.find_opt t.owners id with
           | Some owner when owner == conn -> ()
           | prev ->
             (match prev with
              | Some owner ->
                owner.c_outstanding <- owner.c_outstanding - 1;
                if owner.c_ended && owner.c_outstanding = 0 then
                  send owner (Protocol.Bye { results = owner.c_delivered })
              | None -> ());
             Hashtbl.replace t.owners id conn;
             conn.c_outstanding <- conn.c_outstanding + 1);
          send conn (Protocol.Accepted { id; seed = e_seed; replay = false })
        | None ->
          let seed =
            match bare_seed kvs with
            | Some s -> s
            | None -> Rng.derive t.cfg.base_seed index
          in
          let pinned = pinned_with seed in
          (match
             Manifest.parse_line ~default_config:t.cfg.default_config
               ~base_seed:t.cfg.base_seed ~strict:t.cfg.strict ~index pinned
           with
           | exception Manifest.Error m ->
             send conn (Protocol.Rejected { id = Some id; reason = m })
           | { Manifest.job; _ } ->
             let cost = Circuit.num_gates job.Sched.circuit in
             (match Tenant.offer t.drr ~tenant:job.Sched.tenant ~cost job with
              | Error reason ->
                send conn (Protocol.Rejected { id = Some id; reason })
              | Ok () ->
                ignore (Journal.accept t.journal ~id ~tenant:job.Sched.tenant ~seed ~line:pinned);
                Hashtbl.replace t.owners id conn;
                conn.c_outstanding <- conn.c_outstanding + 1;
                send conn (Protocol.Accepted { id; seed; replay = false });
                pump_locked t)))
  | _ -> send conn (Protocol.Rejected { id = None; reason = "job line is not a JSON object" })

(* --- execution --------------------------------------------------------- *)

(* One scheduler attempt: run on a warm handle keyed by qubit count and
   tenant. The handle is stashed so [deliver] can release it only after
   the result line (which may read a Dd_state amplitude out of the
   handle's package) has been rendered; a retry releases the previous
   attempt's handle first. *)
let runner t ~cancel ~pool (job : Sched.job) =
  let h = Warm.acquire t.warm ~tenant:job.Sched.tenant ~n:job.Sched.circuit.Circuit.n () in
  let prev =
    locked t (fun () ->
        let prev = Hashtbl.find_opt t.handles job.Sched.id in
        Hashtbl.replace t.handles job.Sched.id h;
        prev)
  in
  (match prev with Some prev -> Warm.release t.warm prev | None -> ());
  Driver.run ~cancel ~pool ~package:h.Warm.package ~workspace:h.Warm.workspace
    job.Sched.config job.Sched.circuit

(* Scheduler completion callback (runs on a runner domain). Renders the
   result lines, journals terminal outcomes, releases the warm handle,
   streams to the owning connection, and refills the freed slot. *)
let deliver t (jr : Sched.job_result) =
  let id = jr.Sched.job.Sched.id in
  locked t (fun () ->
      let seed =
        match Journal.find t.journal id with
        | Some e -> e.Journal.e_seed
        | None -> 0 (* unreachable: every submitted job was journaled *)
      in
      let canonical = Manifest.result_line ~timings:false ~seed jr in
      let timed = Manifest.result_line ~timings:true ~seed jr in
      if terminal jr.Sched.outcome && Journal.find t.journal id <> None then
        Journal.complete t.journal ~id ~result:canonical;
      (* Result lines rendered — the package behind a Dd_state final may
         now be reset for reuse. *)
      (match Hashtbl.find_opt t.handles id with
       | Some h ->
         Hashtbl.remove t.handles id;
         Warm.release t.warm h
       | None -> ());
      Tenant.finish t.drr ~tenant:jr.Sched.job.Sched.tenant;
      t.inflight <- t.inflight - 1;
      t.completed <- t.completed + 1;
      Obs.incr c_results;
      (match Hashtbl.find_opt t.owners id with
       | None -> ()
       | Some conn ->
         Hashtbl.remove t.owners id;
         send conn
           (Protocol.Result { id; line = (if conn.c_timings then timed else canonical) });
         conn.c_outstanding <- conn.c_outstanding - 1;
         conn.c_delivered <- conn.c_delivered + 1;
         if conn.c_metrics then begin
           (* A per-result delta snapshot: diff against the previous
              emission instead of resetting, so process-lifetime counters
              survive any number of per-job emissions. *)
           touch_uptime t;
           let snap = Obs.Metrics.snapshot () in
           let delta = Obs.Metrics.diff t.last_snap snap in
           t.last_snap <- snap;
           send conn (Protocol.Metrics { body = Obs.Metrics.to_json delta })
         end;
         if conn.c_ended && conn.c_outstanding = 0 then
           send conn (Protocol.Bye { results = conn.c_delivered }));
      pump_locked t)

(* --- connection reader ------------------------------------------------- *)

let handle_request t conn = function
  | Protocol.Hello_req { timings; metrics; tenant } ->
    conn.c_timings <- timings;
    conn.c_metrics <- metrics;
    conn.c_tenant <- tenant
  | Protocol.Job line -> admit t conn line
  | Protocol.Metrics_req ->
    (* Full re-entrant snapshot: read-only, never resets. *)
    touch_uptime t;
    send conn (Protocol.Metrics { body = Obs.Metrics.to_json (Obs.Metrics.snapshot ()) })
  | Protocol.Ping -> send conn Protocol.Pong
  | Protocol.End_req ->
    locked t (fun () ->
        conn.c_ended <- true;
        if conn.c_outstanding = 0 then
          send conn (Protocol.Bye { results = conn.c_delivered }))

let reader t conn =
  let ic = Unix.in_channel_of_descr conn.c_fd in
  send conn (Protocol.Hello { server = "flatdd_serve " ^ Protocol.schema });
  let rec loop () =
    match input_line ic with
    | exception (End_of_file | Sys_error _) -> ()
    | line when String.trim line = "" -> loop ()
    | line ->
      (match Protocol.parse_request line with
       | exception Protocol.Error m ->
         send conn (Protocol.Rejected { id = None; reason = m })
       | req -> handle_request t conn req);
      loop ()
  in
  loop ();
  kill conn;
  logf t "conn %d closed (%d results delivered)" conn.c_id conn.c_delivered

(* --- lifecycle --------------------------------------------------------- *)

let create cfg =
  let pool = Pool.create cfg.pool_threads in
  let journal =
    Journal.create ?path:cfg.journal_path ~done_tail:cfg.journal_tail
      ~base_seed:cfg.base_seed ()
  in
  let t =
    { cfg;
      mutex = Mutex.create ();
      pool;
      warm = Warm.create ~capacity:cfg.warm_capacity ();
      journal;
      drr = Tenant.create ~quantum:cfg.quantum ~quota:cfg.quota ();
      sched = None;
      owners = Hashtbl.create 64;
      handles = Hashtbl.create 16;
      inflight = 0;
      completed = 0;
      conns = [];
      next_conn = 0;
      last_snap = Obs.Metrics.snapshot ();
      started_at = Unix.gettimeofday ();
      stop = Atomic.make false }
  in
  t.sched <-
    Some
      (Sched.create ~runner:(runner t) ~on_result:(deliver t) ~pool ~slots:cfg.slots ());
  (* Crash recovery: every Pending journal entry re-enters the DRR queues
     (quota was already charged in the life that accepted it) and re-runs
     from its pinned line — same id, same seed, same bytes. *)
  let restored = Journal.pending journal in
  List.iter
    (fun (e : Journal.entry) ->
       match
         Manifest.parse_line ~default_config:cfg.default_config ~base_seed:cfg.base_seed
           ~strict:false ~index:0 e.Journal.e_line
       with
       | { Manifest.job; _ } ->
         let cost = Circuit.num_gates job.Sched.circuit in
         ignore (Tenant.offer ~force:true t.drr ~tenant:job.Sched.tenant ~cost job)
       | exception Manifest.Error m ->
         logf t "journal entry %s no longer parses, dropping: %s" e.Journal.e_id m)
    restored;
  if restored <> [] then
    logf t "restored %d pending job(s) from %s" (List.length restored)
      (Option.value cfg.journal_path ~default:"<memory>");
  t

let stop t = Atomic.set t.stop true
let stopped t = Atomic.get t.stop
let completed t = locked t (fun () -> t.completed)
let pending t = locked t (fun () -> Tenant.pending t.drr + t.inflight)

let run t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if Sys.file_exists t.cfg.socket_path then Sys.remove t.cfg.socket_path;
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX t.cfg.socket_path);
  Unix.listen sock 64;
  logf t "listening on %s (%d slots, pool %d)" t.cfg.socket_path t.cfg.slots
    t.cfg.pool_threads;
  locked t (fun () -> pump_locked t);
  (* Accept loop with a short select timeout so [stop] — one atomic
     store, callable from a signal handler — is observed promptly without
     closing the listener out from under a blocked accept. *)
  while not (Atomic.get t.stop) do
    match Unix.select [ sock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ ->
      (match Unix.accept sock with
       | exception Unix.Unix_error _ -> ()
       | fd, _ ->
         Obs.incr c_connections;
         let conn =
           locked t (fun () ->
               let c =
                 { c_id = t.next_conn;
                   c_fd = fd;
                   c_oc = Unix.out_channel_of_descr fd;
                   c_mutex = Mutex.create ();
                   c_cond = Condition.create ();
                   c_outq = Queue.create ();
                   c_alive = true;
                   c_timings = true;
                   c_metrics = false;
                   c_tenant = None;
                   c_outstanding = 0;
                   c_delivered = 0;
                   c_ended = false }
               in
               t.next_conn <- t.next_conn + 1;
               t.conns <- c :: t.conns;
               c)
         in
         ignore (Thread.create (fun () -> writer conn) ());
         ignore (Thread.create (fun () -> reader t conn) ()))
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  (try Sys.remove t.cfg.socket_path with Sys_error _ -> ());
  (* Running jobs resolve as Cancelled within one gate and stay Pending
     in the journal; the next life re-runs them. *)
  Sched.interrupt (sched t);
  Sched.shutdown (sched t);
  let conns = locked t (fun () -> t.conns) in
  List.iter kill conns;
  Pool.shutdown t.pool;
  Warm.drop_all t.warm;
  touch_uptime t; (* final lifetime reading for a shutdown snapshot *)
  logf t "stopped after %d completed job(s)" (completed t)
