(** The flatdd_serve daemon core: a persistent multi-tenant simulation
    service over a Unix-domain socket.

    One instance owns a shared {!Pool.t}, a {!Sched.t} with [slots]
    runner domains, a {!Warm.t} of reusable engine state, a {!Tenant.t}
    deficit-round-robin admission structure and a crash-safe {!Journal.t}
    of accepted jobs. Clients speak {!Protocol} (JSONL over the socket):
    job lines are qcs_sched/v1 manifest lines; results stream back as
    they land, in the exact bytes a local [flatdd_batch] run would have
    produced for the same pinned id and seed.

    Durability contract: a job is durable the moment its [accepted]
    frame is sent — the journal entry (pinned line) survives [kill -9],
    and the next daemon life re-runs every pending entry and replays
    completed ones verbatim on resubmission. *)

type config = {
  socket_path : string;
  slots : int;            (** concurrently running jobs *)
  pool_threads : int;     (** size of the shared data-parallel pool *)
  base_seed : int;        (** seed derivation base for unpinned jobs *)
  journal_path : string option;  (** [None] disables durability *)
  journal_tail : int;     (** completed entries kept for replay; older
                              done entries are compacted away and a
                              resubmit of their id re-runs the pinned
                              line instead of replaying stored bytes *)
  quantum : int;          (** DRR quantum, in gates per tenant visit *)
  quota : int;            (** per-tenant queued+running bound; 0 = none *)
  warm_capacity : int;    (** idle warm-handle bound *)
  default_config : Config.t;
  strict : bool;          (** reject unknown manifest fields *)
  log : string -> unit;   (** daemon log sink (the binary prints) *)
}

val default_config : config
(** [flatdd.sock], 2 slots, pool 2, seed 1, no journal, 1024-entry
    done-tail, quantum 64, no quota, 8 warm handles, tolerant parsing,
    silent log. *)

type t

val create : config -> t
(** Builds the pool/scheduler/warm cache and replays the journal:
    pending entries re-enter the queues (bypassing quota — they were
    admitted in a previous life), completed ones become replayable.
    @raise Journal.Error on a corrupt or mismatched journal file. *)

val run : t -> unit
(** Binds the socket and serves until {!stop}; then cancels running jobs
    (they stay pending in the journal), joins the scheduler, closes
    connections and shuts the pool down. Blocking — call from the main
    thread; SIGPIPE is ignored. *)

val stop : t -> unit
(** One atomic store — safe from a signal handler. {!run} returns within
    the accept-poll interval (200 ms). *)

val stopped : t -> bool

val completed : t -> int
(** Jobs resolved (any outcome) in this daemon life. *)

val pending : t -> int
(** Jobs queued or running right now. *)
