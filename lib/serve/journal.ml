(* Crash-safe job journal: the daemon's source of truth for which jobs
   were accepted and which finished.

   The on-disk format (schema qcs_serve_journal/v1) is JSONL — a header
   line, then one object per accepted job in accept order:

     {"schema":"qcs_serve_journal/v1","base_seed":1,"next_index":3}
     {"id":"a","tenant":"t0","seed":42,"state":"pending","line":"{...}"}
     {"id":"b","tenant":"t1","seed":7,"state":"done","line":"{...}",
      "result":"{...}"}

   "line" stores the pinned manifest line — explicit "id" and "seed"
   baked in — so a restarted daemon re-parses it with ANY line index and
   gets the same job bit-for-bit. "result" stores the canonical
   (timings-off) result line, replayed verbatim when a client resubmits a
   completed id: exactly-once results over at-least-once submission.

   Every mutation rewrites the whole file through Obs.atomic_write_file
   (temp + rename), so a kill -9 at any instant leaves either the old or
   the new complete journal — never a torn one. An appending format
   would need a recovery-time torn-tail scan for the same guarantee.

   To keep the rewrite from growing O(total jobs ever) in a long-lived
   daemon, each mutation first compacts: every pending entry survives,
   but only the newest [done_tail] completed entries are kept — so a
   rewrite is O(pending + done_tail), a bound the daemon controls, not
   the traffic. The tradeoff is explicit: a client resubmitting an id
   whose done entry aged out of the tail re-runs the job (still
   deterministic — the pinned line carries id and seed) instead of
   replaying stored bytes. Pending entries are never dropped, so the
   crash-recovery guarantee is untouched. *)

exception Error of string

let failf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

let journal_schema = "qcs_serve_journal/v1"

let c_writes = Obs.counter "serve.journal.writes"
let c_restored = Obs.counter "serve.journal.restored"
let c_compactions = Obs.counter "serve.journal.compactions"
let c_dropped = Obs.counter "serve.journal.dropped_done"

type state = Pending | Done of string (* canonical result line *)

type entry = {
  e_id : string;
  e_tenant : string;
  e_seed : int;
  e_line : string; (* pinned manifest line *)
  mutable e_state : state;
}

type t = {
  path : string option; (* None = in-memory only (journaling disabled) *)
  base_seed : int;
  done_tail : int; (* completed entries retained beyond the pending set *)
  mutable next_index : int; (* next fresh derivation index for accepted jobs *)
  mutable entries : entry list; (* reverse accept order *)
  by_id : (string, entry) Hashtbl.t;
}

(* Bound the done set: keep every pending entry plus the newest
   [done_tail] completed ones, forgetting the rest (list and id table).
   [t.entries] is newest-first, so a single filter keeps the right
   tail. Runs before every flush — and also for in-memory journals,
   where it is the only thing bounding the daemon's footprint. *)
let compact t =
  let kept_done = ref 0 and dropped = ref 0 in
  let keep =
    List.filter
      (fun e ->
         match e.e_state with
         | Pending -> true
         | Done _ ->
           if !kept_done < t.done_tail then begin
             incr kept_done;
             true
           end
           else begin
             incr dropped;
             Hashtbl.remove t.by_id e.e_id;
             false
           end)
      t.entries
  in
  if !dropped > 0 then begin
    t.entries <- keep;
    Obs.incr c_compactions;
    Obs.add c_dropped !dropped
  end

(* --- rendering --------------------------------------------------------- *)

let render_entry e =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "{\"id\":\"%s\",\"tenant\":\"%s\",\"seed\":%d"
       (Protocol.json_escape e.e_id) (Protocol.json_escape e.e_tenant) e.e_seed);
  (match e.e_state with
   | Pending -> Buffer.add_string b ",\"state\":\"pending\""
   | Done _ -> Buffer.add_string b ",\"state\":\"done\"");
  Buffer.add_string b
    (Printf.sprintf ",\"line\":\"%s\"" (Protocol.json_escape e.e_line));
  (match e.e_state with
   | Pending -> ()
   | Done r ->
     Buffer.add_string b
       (Printf.sprintf ",\"result\":\"%s\"" (Protocol.json_escape r)));
  Buffer.add_char b '}';
  Buffer.contents b

let render t =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"%s\",\"base_seed\":%d,\"next_index\":%d}\n"
       journal_schema t.base_seed t.next_index);
  List.iter
    (fun e ->
       Buffer.add_string b (render_entry e);
       Buffer.add_char b '\n')
    (List.rev t.entries);
  Buffer.contents b

let flush t =
  match t.path with
  | None -> ()
  | Some path ->
    Obs.atomic_write_file path (render t);
    Obs.incr c_writes

(* --- loading ----------------------------------------------------------- *)

open Obs.Metrics

let jstr ~where kvs k =
  match List.assoc_opt k kvs with
  | Some (Jstr s) -> s
  | _ -> failf "%s: missing string field %S" where k

let jint ~where kvs k =
  match List.assoc_opt k kvs with
  | Some (Jnum s) ->
    (match int_of_string_opt s with
     | Some v -> v
     | None -> failf "%s: field %S is not an integer" where k)
  | _ -> failf "%s: missing integer field %S" where k

let load_file t path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let parse ~where line =
         match parse_json line with
         | Jobj kvs -> kvs
         | _ -> failf "%s: not a JSON object" where
         | exception Parse_error m -> failf "%s: %s" where m
       in
       let header =
         match input_line ic with
         | exception End_of_file -> failf "%s: empty journal" path
         | line -> parse ~where:(path ^ ":1") line
       in
       let where = path ^ ":1" in
       (match jstr ~where header "schema" with
        | s when String.equal s journal_schema -> ()
        | s -> failf "%s: unknown journal schema %S (expected %s)" where s journal_schema);
       if jint ~where header "base_seed" <> t.base_seed then
         failf "%s: journal base_seed %d does not match daemon base_seed %d"
           where (jint ~where header "base_seed") t.base_seed;
       t.next_index <- jint ~where header "next_index";
       let rec go ln =
         match input_line ic with
         | exception End_of_file -> ()
         | line when String.trim line = "" -> go (ln + 1)
         | line ->
           let where = Printf.sprintf "%s:%d" path ln in
           let kvs = parse ~where line in
           let e_state =
             match jstr ~where kvs "state" with
             | "pending" -> Pending
             | "done" -> Done (jstr ~where kvs "result")
             | s -> failf "%s: unknown entry state %S" where s
           in
           let e =
             { e_id = jstr ~where kvs "id";
               e_tenant = jstr ~where kvs "tenant";
               e_seed = jint ~where kvs "seed";
               e_line = jstr ~where kvs "line";
               e_state }
           in
           if Hashtbl.mem t.by_id e.e_id then
             failf "%s: duplicate journal id %S" where e.e_id;
           t.entries <- e :: t.entries;
           Hashtbl.replace t.by_id e.e_id e;
           Obs.incr c_restored;
           go (ln + 1)
       in
       go 2)

let create ?path ?(done_tail = 1024) ~base_seed () =
  if done_tail < 0 then failf "journal: done_tail must be >= 0 (got %d)" done_tail;
  let t =
    { path; base_seed; done_tail; next_index = 0; entries = [];
      by_id = Hashtbl.create 64 }
  in
  (match path with
   | Some p when Sys.file_exists p -> load_file t p
   | _ -> ());
  t

(* --- mutation ---------------------------------------------------------- *)

let take_index t =
  let i = t.next_index in
  t.next_index <- i + 1;
  i

let accept t ~id ~tenant ~seed ~line =
  if Hashtbl.mem t.by_id id then failf "journal: duplicate accept of id %S" id;
  let e = { e_id = id; e_tenant = tenant; e_seed = seed; e_line = line; e_state = Pending } in
  t.entries <- e :: t.entries;
  Hashtbl.replace t.by_id id e;
  compact t;
  flush t;
  e

let complete t ~id ~result =
  match Hashtbl.find_opt t.by_id id with
  | None -> failf "journal: complete of unknown id %S" id
  | Some e ->
    e.e_state <- Done result;
    compact t;
    flush t

let find t id = Hashtbl.find_opt t.by_id id

let pending t =
  List.rev
    (List.filter (fun e -> match e.e_state with Pending -> true | Done _ -> false) t.entries)

let done_results t =
  List.rev
    (List.filter_map
       (fun e -> match e.e_state with Done r -> Some (e.e_id, r) | Pending -> None)
       t.entries)

let size t = List.length t.entries
let base_seed t = t.base_seed
