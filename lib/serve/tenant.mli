(** Deficit-round-robin admission and fair dispatch across tenants.

    Each tenant holds a FIFO of weighted payloads (the serve core uses
    gate count as cost). {!next} implements textbook DRR: every visit to
    a backlogged tenant grants [quantum] credit, the head dispatches
    when its cost fits, and an emptied queue forfeits leftover credit.
    Over a long run each backlogged tenant therefore receives service
    proportional to the (equal) quantum, independent of how many jobs or
    how large a burst any one tenant submits.

    The structure is deliberately {e not} thread-safe: the serve core
    serializes all access under its own mutex. *)

type 'a t

val create : ?quantum:int -> ?quota:int -> unit -> 'a t
(** [quantum] is the per-visit deficit refill in cost units (default 64
    ≈ one small circuit's gates); [quota] bounds each tenant's
    queued+inflight jobs, [0] (default) meaning unlimited. *)

val offer :
  ?force:bool -> 'a t -> tenant:string -> cost:int -> 'a -> (unit, string) result
(** Enqueue for [tenant], or [Error reason] if the tenant is at quota.
    [~force:true] skips the quota check — used when re-queuing journal
    entries that were already admitted in a previous daemon life. Counts
    [serve.admitted] / [serve.rejected]; maintains the
    [serve.queue_depth] gauge. *)

val next : 'a t -> (string * 'a) option
(** Pop the next payload under DRR, tagged with its tenant; [None] iff
    every queue is empty. The caller must eventually call {!finish} for
    the returned tenant. *)

val finish : 'a t -> tenant:string -> unit
(** Mark one inflight job of [tenant] finished (releases quota). *)

val pending : 'a t -> int
(** Total queued (not yet dispatched) payloads. *)

val inflight : 'a t -> int
(** Total dispatched-but-unfinished payloads. *)

val tenants : 'a t -> string list
(** Tenants ever seen, in current ring order (diagnostics). *)
