(* The serve client: runs a qcs_sched/v1 manifest against a daemon and
   returns the result lines a local flatdd_batch run would have written.

   Determinism lives here, not in the daemon: the client parses the
   manifest locally (same code path as flatdd_batch), which fixes every
   job's id and splitmix-derived seed by physical line index, then ships
   each line with "id", "seed" and the effective "dd_domains"/"order"
   pinned and any relative "qasm" path absolutized against the manifest
   directory.
   The daemon therefore computes the same bytes regardless
   of how many other clients' jobs interleave with ours — and a journal
   replay after a crash reuses the very same pinned lines. *)

exception Error of string

let failf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

type connection = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  greeting : string;
}

(* Establishment includes the daemon's Hello greeting, not just the
   socket-level connect. A connect() into the listen backlog of a daemon
   that is being killed succeeds at the kernel level and is then reset
   when the dying listener's backlog is purged — observed as ECONNRESET
   (or instant EOF) on the first read. Treating the greeting as part of
   the handshake folds that restart race into the same retry loop as a
   refused connection, so a client started alongside a daemon restart
   rides through it. *)
let connect ?(retry_for = 0.0) ~socket_path () =
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let retry e =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Thread.delay 0.05;
        go ()
      end
      else raise e
    in
    match Unix.connect fd (Unix.ADDR_UNIX socket_path) with
    | exception (Unix.Unix_error
                   ((Unix.ECONNREFUSED | Unix.ENOENT | Unix.ECONNRESET | Unix.EAGAIN), _, _)
                 as e) ->
      retry e
    | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
    | () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      (match input_line ic with
       | exception End_of_file ->
         retry (Error "daemon closed the connection during handshake")
       | exception Sys_error _ ->
         retry (Error "daemon reset the connection during handshake")
       | line ->
         (match Protocol.parse_frame line with
          | Protocol.Hello { server } -> { fd; ic; oc; greeting = server }
          | exception Protocol.Error m ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            failf "bad greeting from daemon: %s" m
          | _ ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            failf "daemon did not greet with a hello frame: %s" line))
  in
  go ()

let send_request c req =
  output_string c.oc (Protocol.render_request req);
  output_char c.oc '\n';
  flush c.oc

let read_frame c =
  match input_line c.ic with
  | exception End_of_file -> failf "connection closed by daemon"
  | line -> Protocol.parse_frame line

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()
let greeting c = c.greeting

(* --- manifest shipping ------------------------------------------------- *)

(* Pin id/seed (and optionally tenant) into a raw manifest line, and
   absolutize a relative qasm path against the manifest's directory so
   the daemon — whose cwd is its own — resolves the same file. *)
let pin_line ~dir ?tenant (r : Manifest.resolved) raw =
  let open Obs.Metrics in
  let kvs =
    match parse_json raw with
    | Jobj kvs -> kvs
    | _ | (exception Parse_error _) ->
      failf "internal: line for job %s re-parse failed" r.Manifest.job.Sched.id
  in
  let kvs = Protocol.set_field kvs "id" (Jstr r.Manifest.job.Sched.id) in
  let kvs = Protocol.set_field kvs "seed" (Jnum (string_of_int r.Manifest.seed)) in
  let kvs =
    match List.assoc_opt "qasm" kvs with
    | Some (Jstr path) when Filename.is_relative path ->
      (* Filename.concat does not special-case an absolute [dir], so only
         prefix the cwd when the manifest directory itself is relative. *)
      let base =
        if Filename.is_relative dir then Filename.concat (Sys.getcwd ()) dir else dir
      in
      Protocol.set_field kvs "qasm" (Jstr (Filename.concat base path))
    | _ -> kvs
  in
  (* Config defaults that exist only client-side (--dd-domains) ride the
     wire as an explicit field, so the daemon's own defaults never
     silently override what this client's flags resolved to. *)
  let kvs =
    if List.mem_assoc "dd_domains" kvs then kvs
    else
      Protocol.set_field kvs "dd_domains"
        (Jnum (string_of_int r.Manifest.job.Sched.config.Config.dd_domains))
  in
  let kvs =
    if List.mem_assoc "order" kvs then kvs
    else
      Protocol.set_field kvs "order"
        (Jstr (Config.order_name r.Manifest.job.Sched.config.Config.order))
  in
  let kvs =
    if List.mem_assoc "precision" kvs then kvs
    else
      Protocol.set_field kvs "precision"
        (Jstr (Config.precision_name r.Manifest.job.Sched.config.Config.precision))
  in
  let kvs =
    match tenant, List.assoc_opt "tenant" kvs with
    | Some tenant, None -> Protocol.set_field kvs "tenant" (Jstr tenant)
    | _ -> kvs
  in
  Protocol.render_obj kvs

(* Manifest walk matching Manifest.load: physical line indices, blank and
   #-comment lines skipped, each surviving line locally parsed (errors
   surface here with their line numbers, before anything is sent). *)
let load_pinned ?default_config ?base_seed ?strict ?tenant path =
  let dir = Filename.dirname path in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let rec go index acc seen =
         match input_line ic with
         | exception End_of_file -> List.rev acc
         | line ->
           let stripped = String.trim line in
           if stripped = "" || stripped.[0] = '#' then go (index + 1) acc seen
           else begin
             let r =
               Manifest.parse_line ?default_config ?base_seed ?strict ~dir ~index stripped
             in
             let id = r.Manifest.job.Sched.id in
             (* Same check (and message) as Manifest.load: a duplicate id
                would otherwise reach the daemon, run once, and map both
                manifest entries to the first job's result line. *)
             if List.mem id seen then
               failf "manifest line %d: duplicate job id %S" (index + 1) id;
             go (index + 1) ((r, pin_line ~dir ?tenant r stripped) :: acc) (id :: seen)
           end
       in
       go 0 [] [])

let run_manifest ?default_config ?base_seed ?strict ?tenant ?(timings = true)
    ?(retry_for = 0.0) ~socket_path path =
  let pinned = load_pinned ?default_config ?base_seed ?strict ?tenant path in
  let c = connect ~retry_for ~socket_path () in
  Fun.protect
    ~finally:(fun () -> close c)
    (fun () ->
       send_request c (Protocol.Hello_req { timings; metrics = false; tenant });
       List.iter (fun (_, line) -> send_request c (Protocol.Job line)) pinned;
       send_request c Protocol.End_req;
       let results : (string, string) Hashtbl.t = Hashtbl.create 16 in
       let rec drain () =
         match read_frame c with
         | Protocol.Bye _ -> ()
         | Protocol.Result { id; line } ->
           Hashtbl.replace results id line;
           drain ()
         | Protocol.Rejected { id; reason } ->
           failf "daemon rejected %s: %s"
             (Option.value id ~default:"<line>") reason
         | Protocol.Hello _ | Protocol.Accepted _ | Protocol.Metrics _ | Protocol.Pong ->
           drain ()
       in
       drain ();
       List.map
         (fun ((r : Manifest.resolved), _) ->
            let id = r.Manifest.job.Sched.id in
            match Hashtbl.find_opt results id with
            | Some line -> (r, line)
            | None -> failf "daemon closed without a result for %s" id)
         pinned)
