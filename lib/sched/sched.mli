(** Batched multi-circuit job scheduling over one shared pool.

    The simulator runs one circuit per call; production batches run
    thousands. This scheduler dispatches many independent simulation jobs
    over [slots] concurrent runners (a {!Taskq.t}) while every job's inner
    data-parallel phases (conversion, DMAV) share a single {!Pool.t} —
    pool admission serializes those, so the DD phases of different jobs
    overlap and the wide phases take the whole pool in turn, instead of
    every job spawning its own domains.

    Job lifecycle:

    {v
      submit --> QUEUED --(slot free, max priority, FIFO within)--> RUNNING
        QUEUED  --cancel----------------------------> CANCELLED (never ran)
        RUNNING --cancel flag, polled per gate------> CANCELLED
        RUNNING --deadline passed, polled per gate--> TIMED_OUT
        RUNNING --exception, retries left--(downgrade config)--> RUNNING
        RUNNING --exception, retries exhausted------> FAILED
        RUNNING --final state reached---------------> COMPLETED
    v}

    Deadlines are wall-clock budgets for the {e running} phase of a job
    (all attempts included), enforced cooperatively through
    [Simulator.simulate ~cancel] — a deadline or cancellation lands within
    one gate application and never poisons the shared pool.

    Instrumented as [sched.{submitted,completed,failed,timed_out,
    cancelled,retries}] and spans [sched.{queue_wait,run}]. *)

type job = {
  id : string;                (** unique within one scheduler *)
  tenant : string;            (** accounting key for the serve layer; "" = none *)
  circuit : Circuit.t;
  config : Config.t;
  priority : int;             (** higher dispatches first; default 0 *)
  deadline_s : float;         (** run-phase wall-clock budget; <= 0 = none *)
  max_retries : int;          (** extra attempts after a failure *)
}

val job :
  ?config:Config.t ->
  ?tenant:string ->
  ?priority:int ->
  ?deadline_s:float ->
  ?max_retries:int ->
  id:string ->
  Circuit.t ->
  job
(** Smart constructor: [Config.default], no tenant, priority 0, no
    deadline, no retries unless overridden. *)

type outcome =
  | Completed of Simulator.result
  | Failed of exn        (** last attempt's exception, retries exhausted *)
  | Timed_out
  | Cancelled

type job_result = {
  job : job;
  outcome : outcome;
  queue_wait_s : float;  (** submit → first dispatch (or cancellation) *)
  run_s : float;         (** wall clock across all attempts *)
  attempts : int;        (** attempts started; 0 if cancelled while queued *)
  downgraded : bool;     (** at least one retry ran a downgraded config *)
}

val outcome_name : outcome -> string
(** ["completed" | "failed" | "timed_out" | "cancelled"]. *)

type runner = cancel:(unit -> bool) -> pool:Pool.t -> job -> Simulator.result
(** How one attempt executes; the job carries the attempt's config (a
    retry passes the downgraded config in [job.config]). The default is
    [Simulator.simulate]; tests inject failing runners to exercise retry
    paths, and the serve daemon injects a warm-state runner keyed by
    [job.tenant]. *)

val default_downgrade : Config.t -> Config.t
(** The retry downgrade: force the flat-array path ([Convert_at (-1)]),
    the predictable-memory fallback for jobs whose DD phase blew up. *)

type t

val create :
  ?downgrade:(Config.t -> Config.t) ->
  ?runner:runner ->
  ?on_result:(job_result -> unit) ->
  ?paused:bool ->
  pool:Pool.t ->
  slots:int ->
  unit ->
  t
(** [create ~pool ~slots ()] spawns [slots] runner domains sharing
    [pool]. [on_result] streams each result as it lands (called from a
    runner domain; keep it cheap and thread-safe). [~paused:true] holds
    dispatch until {!start} so a whole batch can be queued first. The
    pool is borrowed, never shut down. *)

val start : t -> unit

val submit : t -> job -> unit
(** @raise Invalid_argument on a duplicate id or after {!shutdown}. *)

val cancel : t -> string -> bool
(** [cancel t id]: a queued job resolves to [Cancelled] immediately and
    never runs; a running job's flag is raised and it resolves to
    [Cancelled] within one gate. [false] when [id] is unknown or the job
    already resolved. *)

val drain : t -> job_result list
(** Starts dispatch if paused, waits for every submitted job to resolve
    and returns results in {e submission} order — deterministic output
    for identical manifests regardless of slot interleaving. *)

val interrupt : t -> unit
(** Trips every job's cancel poll at once: running jobs resolve as
    [Cancelled] within one gate, queued ones resolve as [Cancelled]
    without starting. One atomic store — safe to call from a signal
    handler; {!drain} afterwards still returns every result, so a batch
    CLI interrupted by SIGINT/SIGTERM can write the outcomes it has. *)

val interrupted : t -> bool

val shutdown : t -> unit
(** Waits for running jobs, resolves still-queued ones as [Cancelled],
    joins the runner domains. The shared pool is left alone. *)

val run_jobs :
  ?downgrade:(Config.t -> Config.t) ->
  ?runner:runner ->
  ?on_result:(job_result -> unit) ->
  pool:Pool.t ->
  slots:int ->
  job list ->
  job_result list
(** One-shot batch: queue every job while paused (so priorities are
    respected exactly), dispatch, drain, shut down. *)
