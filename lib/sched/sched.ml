(* The batch scheduler: Taskq supplies slot domains and priority/FIFO
   dispatch; this module layers job identity, deadlines, cooperative
   cancellation and retry-with-downgrade on top, and keeps the per-job
   accounting the batch CLI serializes.

   Deadline enforcement needs no watchdog thread: the cancellation poll
   handed to the simulator compares the wall clock against the job's
   absolute deadline at every gate boundary, so a deadline fires within
   one gate of its expiry and is classified afterwards by looking at the
   user-cancel flag. *)

let c_submitted = Obs.counter "sched.submitted"
let c_completed = Obs.counter "sched.completed"
let c_failed = Obs.counter "sched.failed"
let c_timed_out = Obs.counter "sched.timed_out"
let c_cancelled = Obs.counter "sched.cancelled"
let c_retries = Obs.counter "sched.retries"
let s_queue_wait = Obs.span "sched.queue_wait"
let s_run = Obs.span "sched.run"

type job = {
  id : string;
  tenant : string;
  circuit : Circuit.t;
  config : Config.t;
  priority : int;
  deadline_s : float;
  max_retries : int;
}

let job ?(config = Config.default) ?(tenant = "") ?(priority = 0) ?(deadline_s = 0.0)
    ?(max_retries = 0) ~id circuit =
  { id; tenant; circuit; config; priority; deadline_s; max_retries }

type outcome =
  | Completed of Simulator.result
  | Failed of exn
  | Timed_out
  | Cancelled

type job_result = {
  job : job;
  outcome : outcome;
  queue_wait_s : float;
  run_s : float;
  attempts : int;
  downgraded : bool;
}

let outcome_name = function
  | Completed _ -> "completed"
  | Failed _ -> "failed"
  | Timed_out -> "timed_out"
  | Cancelled -> "cancelled"

type runner = cancel:(unit -> bool) -> pool:Pool.t -> job -> Simulator.result

let default_runner ~cancel ~pool job = Simulator.simulate ~cancel ~pool job.config job.circuit

let default_downgrade cfg = { cfg with Config.policy = Config.Convert_at (-1) }

type tracked = {
  t_job : job;
  submitted_at : float;
  user_cancel : bool Atomic.t;
  mutable handle : unit Taskq.handle option; (* set before submit returns *)
  mutable result : job_result option;        (* guarded by [mutex] *)
}

type t = {
  tq : Taskq.t;
  pool : Pool.t;
  mutex : Mutex.t;
  by_id : (string, tracked) Hashtbl.t;
  mutable order : tracked list;              (* reverse submission order *)
  downgrade : Config.t -> Config.t;
  runner : runner;
  on_result : job_result -> unit;
  stop : bool Atomic.t;                      (* interrupt: cancel everything *)
}

let create ?(downgrade = default_downgrade) ?(runner = default_runner)
    ?(on_result = fun _ -> ()) ?paused ~pool ~slots () =
  { tq = Taskq.create ?paused slots;
    pool;
    mutex = Mutex.create ();
    by_id = Hashtbl.create 64;
    order = [];
    downgrade;
    runner;
    on_result;
    stop = Atomic.make false }

let start t = Taskq.start t.tq

(* One atomic store, safe to call from a signal handler: every job's
   cancel poll ORs this flag in, so running jobs resolve as [Cancelled]
   within one gate and queued ones as soon as a slot picks them up.
   [drain] still returns the full result list, so a batch CLI can write
   whatever completed before the interrupt. *)
let interrupt t = Atomic.set t.stop true
let interrupted t = Atomic.get t.stop

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t tracked jr =
  locked t (fun () -> tracked.result <- Some jr);
  (match jr.outcome with
   | Completed _ -> Obs.incr c_completed
   | Failed _ -> Obs.incr c_failed
   | Timed_out -> Obs.incr c_timed_out
   | Cancelled -> Obs.incr c_cancelled);
  t.on_result jr

(* One slot's work for one job: measure queue wait, then run attempts
   under a shared cancellation poll until a final outcome. *)
let execute t tracked =
  let job = tracked.t_job in
  let started_at = Unix.gettimeofday () in
  let queue_wait_s = started_at -. tracked.submitted_at in
  Obs.add_span_ns s_queue_wait (int_of_float (queue_wait_s *. 1e9));
  let deadline_abs =
    if job.deadline_s > 0.0 then started_at +. job.deadline_s else infinity
  in
  let user_cancelled () = Atomic.get tracked.user_cancel || Atomic.get t.stop in
  let cancel_poll () = user_cancelled () || Unix.gettimeofday () > deadline_abs in
  if user_cancelled () then
    (* Cancelled (or the whole scheduler interrupted) while queued but
       after dispatch won the race against [cancel]: resolve without
       starting an attempt. *)
    record t tracked
      { job; outcome = Cancelled; queue_wait_s; run_s = 0.0; attempts = 0;
        downgraded = false }
  else begin
    let attempts = ref 0 in
    let downgraded = ref false in
    let rec attempt cfg =
      incr attempts;
      match t.runner ~cancel:cancel_poll ~pool:t.pool { job with config = cfg } with
      | r -> Completed r
      | exception Simulator.Cancelled ->
        if user_cancelled () then Cancelled else Timed_out
      | exception e ->
        (* Retry only while the job is still allowed to run; a failure past
           the deadline or after a cancel keeps the failure outcome but
           burns no further attempts. *)
        if !attempts <= job.max_retries && not (cancel_poll ()) then begin
          Obs.incr c_retries;
          downgraded := true;
          attempt (t.downgrade cfg)
        end
        else Failed e
    in
    let outcome, run_s = Obs.timed s_run (fun () -> attempt job.config) in
    record t tracked
      { job; outcome; queue_wait_s; run_s; attempts = !attempts; downgraded = !downgraded }
  end

let submit t job =
  let tracked =
    { t_job = job;
      submitted_at = Unix.gettimeofday ();
      user_cancel = Atomic.make false;
      handle = None;
      result = None }
  in
  locked t (fun () ->
      if Hashtbl.mem t.by_id job.id then
        invalid_arg (Printf.sprintf "Sched.submit: duplicate job id %S" job.id);
      Hashtbl.add t.by_id job.id tracked;
      t.order <- tracked :: t.order);
  Obs.incr c_submitted;
  tracked.handle <- Some (Taskq.submit ~priority:job.priority t.tq (fun () -> execute t tracked))

let cancel t id =
  let tracked = locked t (fun () -> Hashtbl.find_opt t.by_id id) in
  match tracked with
  | None -> false
  | Some tracked ->
    let already_done = locked t (fun () -> tracked.result <> None) in
    if already_done then false
    else begin
      Atomic.set tracked.user_cancel true;
      let aborted =
        match tracked.handle with Some h -> Taskq.try_abort h | None -> false
      in
      if aborted then
        (* Never dispatched: synthesize the result here; queue wait ends now. *)
        record t tracked
          { job = tracked.t_job;
            outcome = Cancelled;
            queue_wait_s = Unix.gettimeofday () -. tracked.submitted_at;
            run_s = 0.0;
            attempts = 0;
            downgraded = false };
      (* Running (or racing to completion): the poll resolves it. Either
         way the cancel landed on an unresolved job. *)
      true
    end

let drain t =
  Taskq.wait_idle t.tq;
  let in_order = locked t (fun () -> List.rev t.order) in
  List.map
    (fun tracked ->
       match locked t (fun () -> tracked.result) with
       | Some jr -> jr
       | None ->
         (* Only reachable if the queue was shut down under the job. *)
         { job = tracked.t_job;
           outcome = Cancelled;
           queue_wait_s = 0.0;
           run_s = 0.0;
           attempts = 0;
           downgraded = false })
    in_order

let shutdown t = Taskq.shutdown t.tq

let run_jobs ?downgrade ?runner ?on_result ~pool ~slots jobs =
  let t = create ?downgrade ?runner ?on_result ~paused:true ~pool ~slots () in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
       List.iter (submit t) jobs;
       start t;
       drain t)
