(* Manifest lines ride the minimal JSON parser that already ships with
   the metrics layer (Obs.Metrics.parse_json) — flat objects of strings,
   numbers and booleans are all the schema needs. Rendering keeps a fixed
   key order and prints floats with %.17g so identical runs produce
   identical bytes; every timing key ends in "_s" and can be suppressed
   wholesale for byte-comparison of two runs. *)

exception Error of string

type resolved = { job : Sched.job; seed : int; explicit_seed : bool }

let failf fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* --- field accessors over one parsed line ----------------------------- *)

open Obs.Metrics

let field kvs name = List.assoc_opt name kvs

let str_field ~where kvs name =
  match field kvs name with
  | None -> None
  | Some (Jstr s) -> Some s
  | Some _ -> failf "%s: field %S must be a string" where name

let int_field ~where kvs name =
  match field kvs name with
  | None -> None
  | Some (Jnum s) ->
    (match int_of_string_opt s with
     | Some v -> Some v
     | None -> failf "%s: field %S must be an integer (got %s)" where name s)
  | Some _ -> failf "%s: field %S must be an integer" where name

let float_field ~where kvs name =
  match field kvs name with
  | None -> None
  | Some (Jnum s) ->
    (match float_of_string_opt s with
     | Some v -> Some v
     | None -> failf "%s: field %S must be a number (got %s)" where name s)
  | Some _ -> failf "%s: field %S must be a number" where name

let known_fields =
  [ "schema"; "id"; "tenant"; "circuit"; "qasm"; "n"; "gates"; "seed"; "priority";
    "deadline_s"; "max_retries"; "beta"; "epsilon"; "compact_every"; "fusion";
    "policy"; "dd_domains"; "order"; "precision" ]

let schema = "qcs_sched/v1"
let schema_prefix = "qcs_sched/v"

(* The optional per-line "schema" tag is version-strict: v1 parses, any
   other qcs_sched version is rejected with a line-numbered error rather
   than silently defaulting the fields that version might redefine. *)
let check_schema ~where = function
  | None -> ()
  | Some s when String.equal s schema -> ()
  | Some s
    when String.length s > String.length schema_prefix
         && String.equal (String.sub s 0 (String.length schema_prefix)) schema_prefix ->
    failf "%s: unsupported manifest schema version %S (this parser speaks %s)"
      where s schema
  | Some s -> failf "%s: unknown schema %S (expected %s)" where s schema

let parse_line ?(default_config = Config.default) ?(base_seed = 1) ?(dir = ".")
    ?(strict = true) ~index line =
  let where = Printf.sprintf "manifest line %d" (index + 1) in
  let kvs =
    match parse_json line with
    | Jobj kvs -> kvs
    | _ -> failf "%s: not a JSON object" where
    | exception Parse_error m -> failf "%s: %s" where m
  in
  (* Unknown top-level fields are rejected under [strict] (the default);
     a tolerant parser — the serve daemon fed by a newer client — can opt
     out and skip fields it does not understand. *)
  if strict then
    List.iter
      (fun (k, _) ->
         if not (List.mem k known_fields) then failf "%s: unknown field %S" where k)
      kvs;
  check_schema ~where (str_field ~where kvs "schema");
  let id =
    match str_field ~where kvs "id" with
    | Some id when id <> "" -> id
    | Some _ -> failf "%s: empty id" where
    | None -> Printf.sprintf "job-%d" index
  in
  let explicit_seed, seed =
    match int_field ~where kvs "seed" with
    | Some s -> (true, s)
    | None -> (false, Rng.derive base_seed index)
  in
  let tenant = Option.value (str_field ~where kvs "tenant") ~default:"" in
  let circuit =
    match str_field ~where kvs "circuit", str_field ~where kvs "qasm" with
    | Some _, Some _ -> failf "%s: give either \"circuit\" or \"qasm\", not both" where
    | None, None -> failf "%s: missing \"circuit\" (family) or \"qasm\" (path)" where
    | None, Some path ->
      let path = if Filename.is_relative path then Filename.concat dir path else path in
      (try (Qasm.of_file path).Qasm.circuit with
       | Qasm.Parse_error _ as e ->
         failf "%s: %s" where (Format.asprintf "%a" Qasm.pp_error e)
       | Sys_error m -> failf "%s: %s" where m)
    | Some family, None ->
      let fam =
        match Suite.family_of_name family with
        | Some f -> f
        | None -> failf "%s: unknown circuit family %S" where family
      in
      let n =
        match int_field ~where kvs "n" with
        | Some n when n >= 1 -> n
        | Some n -> failf "%s: n must be >= 1 (got %d)" where n
        | None -> failf "%s: \"n\" is required with a circuit family" where
      in
      let gates = int_field ~where kvs "gates" in
      Suite.generate ?gates ~seed fam ~n
  in
  let config =
    let cfg = default_config in
    let cfg =
      match float_field ~where kvs "beta" with
      | Some beta -> { cfg with Config.beta }
      | None -> cfg
    in
    let cfg =
      match float_field ~where kvs "epsilon" with
      | Some epsilon -> { cfg with Config.epsilon }
      | None -> cfg
    in
    let cfg =
      match int_field ~where kvs "compact_every" with
      | Some compact_every -> { cfg with Config.compact_every }
      | None -> cfg
    in
    let cfg =
      match field kvs "fusion" with
      | None -> cfg
      | Some (Jstr "none") -> { cfg with Config.fusion = Config.No_fusion }
      | Some (Jstr "dmav") -> { cfg with Config.fusion = Config.Dmav_aware }
      | Some (Jnum s) when int_of_string_opt s <> None && int_of_string s >= 1 ->
        { cfg with Config.fusion = Config.K_operations (int_of_string s) }
      | Some _ -> failf "%s: fusion is \"none\" | \"dmav\" | k >= 1" where
    in
    let cfg =
      match field kvs "policy" with
      | None -> cfg
      | Some (Jstr "ewma") -> { cfg with Config.policy = Config.Ewma_policy }
      | Some (Jstr "never") -> { cfg with Config.policy = Config.Never_convert }
      | Some (Jnum s) when int_of_string_opt s <> None ->
        { cfg with Config.policy = Config.Convert_at (int_of_string s) }
      | Some _ -> failf "%s: policy is \"ewma\" | \"never\" | convert-at gate index" where
    in
    let cfg =
      match int_field ~where kvs "dd_domains" with
      | Some d when d >= 1 -> { cfg with Config.dd_domains = d }
      | Some d -> failf "%s: dd_domains must be >= 1 (got %d)" where d
      | None -> cfg
    in
    let cfg =
      match field kvs "order" with
      | None -> cfg
      | Some (Jstr s) when Config.order_of_name s <> None ->
        { cfg with Config.order = Option.get (Config.order_of_name s) }
      | Some _ -> failf "%s: order is \"none\" | \"static\" | \"sift\"" where
    in
    let cfg =
      match field kvs "precision" with
      | None -> cfg
      | Some (Jstr s) when Config.precision_of_name s <> None ->
        { cfg with Config.precision = Option.get (Config.precision_of_name s) }
      | Some _ -> failf "%s: precision is \"f64\" | \"f32\"" where
    in
    cfg
  in
  let priority = Option.value (int_field ~where kvs "priority") ~default:0 in
  let deadline_s = Option.value (float_field ~where kvs "deadline_s") ~default:0.0 in
  let max_retries =
    match int_field ~where kvs "max_retries" with
    | Some r when r >= 0 -> r
    | Some r -> failf "%s: max_retries must be >= 0 (got %d)" where r
    | None -> 0
  in
  { job = Sched.job ~config ~tenant ~priority ~deadline_s ~max_retries ~id circuit;
    seed;
    explicit_seed }

let load ?default_config ?base_seed ?strict path =
  let dir = Filename.dirname path in
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
       let rec go index acc seen =
         match input_line ic with
         | exception End_of_file -> List.rev acc
         | line ->
           let stripped = String.trim line in
           if stripped = "" || stripped.[0] = '#' then go (index + 1) acc seen
           else begin
             let r = parse_line ?default_config ?base_seed ~dir ?strict ~index stripped in
             let id = r.job.Sched.id in
             if List.mem id seen then
               failf "manifest line %d: duplicate job id %S" (index + 1) id;
             go (index + 1) (r :: acc) (id :: seen)
           end
       in
       go 0 [] [])

(* --- result stream ----------------------------------------------------- *)

(* Logical-basis p0. [Simulator.amplitude] walks the result's recorded
   qubit order; index 0 is order-invariant, so `--order none` keeps the
   exact bytes this produced before the order layer existed. *)
let p0_of result = Cnum.norm2 (Simulator.amplitude result 0)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
       match ch with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | '\r' -> Buffer.add_string b "\\r"
       | '\t' -> Buffer.add_string b "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let result_line ?(timings = true) ~seed (jr : Sched.job_result) =
  let job = jr.Sched.job in
  let b = Buffer.create 256 in
  let sep () = Buffer.add_char b ',' in
  let key k = Buffer.add_string b (Printf.sprintf "\"%s\":" k) in
  let str k v =
    key k;
    Buffer.add_string b ("\"" ^ json_escape v ^ "\"")
  in
  let int k v =
    key k;
    Buffer.add_string b (string_of_int v)
  in
  let opt_int k v =
    key k;
    Buffer.add_string b (match v with Some v -> string_of_int v | None -> "null")
  in
  let flt k v =
    key k;
    Buffer.add_string b (Printf.sprintf "%.17g" v)
  in
  let bool k v =
    key k;
    Buffer.add_string b (if v then "true" else "false")
  in
  Buffer.add_char b '{';
  str "schema" "qcs_sched/v1";
  sep ();
  str "id" job.Sched.id;
  sep ();
  if job.Sched.tenant <> "" then begin
    str "tenant" job.Sched.tenant;
    sep ()
  end;
  str "outcome" (Sched.outcome_name jr.Sched.outcome);
  sep ();
  int "priority" job.Sched.priority;
  sep ();
  int "seed" seed;
  sep ();
  int "n" job.Sched.circuit.Circuit.n;
  sep ();
  int "gates" (Circuit.num_gates job.Sched.circuit);
  sep ();
  int "attempts" jr.Sched.attempts;
  sep ();
  bool "downgraded" jr.Sched.downgraded;
  sep ();
  (match jr.Sched.outcome with
   | Sched.Completed r ->
     opt_int "converted_at" r.Simulator.converted_at;
     sep ();
     key "p0";
     Buffer.add_string b (Printf.sprintf "%.17g" (p0_of r));
     sep ();
     key "error";
     Buffer.add_string b "null"
   | Sched.Failed e ->
     opt_int "converted_at" None;
     sep ();
     key "p0";
     Buffer.add_string b "null";
     sep ();
     str "error" (Printexc.to_string e)
   | Sched.Timed_out | Sched.Cancelled ->
     opt_int "converted_at" None;
     sep ();
     key "p0";
     Buffer.add_string b "null";
     sep ();
     key "error";
     Buffer.add_string b "null");
  if timings then begin
    sep ();
    flt "queue_wait_s" jr.Sched.queue_wait_s;
    sep ();
    flt "run_s" jr.Sched.run_s;
    (match jr.Sched.outcome with
     | Sched.Completed r ->
       sep ();
       flt "dd_s" r.Simulator.seconds_dd;
       sep ();
       flt "convert_s" r.Simulator.seconds_convert;
       sep ();
       flt "dmav_s" r.Simulator.seconds_dmav
     | _ -> ())
  end;
  Buffer.add_char b '}';
  Buffer.contents b

let result_lines ?timings pairs =
  String.concat ""
    (List.map
       (fun ({ seed; _ }, jr) -> result_line ?timings ~seed jr ^ "\n")
       pairs)
