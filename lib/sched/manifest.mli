(** JSONL job manifests and result streams for the batch CLI.

    A manifest is one JSON object per line; each line resolves to one
    {!Sched.job}:

    {v
    {"id":"qft-20","circuit":"qft","n":14,"priority":1,"deadline_s":2.0}
    {"circuit":"supremacy","n":12,"gates":300,"seed":7,"max_retries":1}
    {"qasm":"circuits/bell.qasm","epsilon":1.5,"fusion":"dmav"}
    v}

    Recognized fields (all optional unless noted): [id] (default
    [job-<line>]), [circuit] — a {!Suite} family name — or [qasm] — a
    path, relative to the manifest file ({e exactly one of the two});
    [n] (required with [circuit]), [gates], [seed], [priority],
    [deadline_s], [max_retries], and the config overrides [beta],
    [epsilon], [compact_every], [fusion] (["none"] | ["dmav"] | k) and
    [policy] (["ewma"] | ["never"] | k for convert-at-gate-k).

    Jobs without an explicit [seed] get the splitmix-derived
    [Rng.derive base_seed line_index], so one base seed reproduces the
    whole batch byte-for-byte. *)

exception Error of string
(** Parse or resolution failure; the message names the line. *)

type resolved = { job : Sched.job; seed : int; explicit_seed : bool }
(** A manifest line after circuit generation; [seed] is echoed into the
    result stream ([explicit_seed] says whether the line carried it or it
    was derived from the base seed and line index — the serve client
    pins derived seeds before shipping lines to a daemon). *)

val parse_line :
  ?default_config:Config.t ->
  ?base_seed:int ->
  ?dir:string ->
  ?strict:bool ->
  index:int ->
  string ->
  resolved
(** [parse_line ~index line] resolves the [index]-th (0-based) manifest
    line. [dir] anchors relative [qasm] paths (default ["."]).

    Version strictness: an optional per-line ["schema"] field must be
    ["qcs_sched/v1"] — any other [qcs_sched/vN] raises a line-numbered
    {!Error} instead of silently defaulting the fields that version might
    redefine. Unknown top-level fields are rejected when [strict] (the
    default); [~strict:false] skips them, for a daemon fed by newer
    clients.
    @raise Error on malformed input. *)

val load :
  ?default_config:Config.t -> ?base_seed:int -> ?strict:bool -> string -> resolved list
(** Reads a whole manifest file; blank lines and [#]-prefixed comment
    lines are skipped (indices still count physical lines).
    @raise Error on malformed input, [Sys_error] on IO failure. *)

val result_line : ?timings:bool -> seed:int -> Sched.job_result -> string
(** One result-stream line (schema [qcs_sched/v1], no trailing newline):
    outcome, identity, [attempts]/[downgraded], [converted_at] and the
    deterministic fingerprint [p0] = |⟨0…0|ψ⟩|² for completed jobs, the
    error text for failed ones, and — unless [~timings:false] — the
    [*_s] timing fields ([queue_wait_s], [run_s], [dd_s], [convert_s],
    [dmav_s]). With [~timings:false] the line is byte-deterministic for
    a fixed manifest. *)

val result_lines : ?timings:bool -> (resolved * Sched.job_result) list -> string
(** The whole result stream, one line per pair, trailing newline. *)
