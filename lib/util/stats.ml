let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | xs ->
    List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: nonpositive") xs;
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int (List.length xs))

let median = function
  | [] -> invalid_arg "Stats.median: empty"
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs ->
    List.fold_left (fun (lo, hi) v -> (Float.min lo v, Float.max hi v)) (x, x) xs

let stddev xs =
  let m = mean xs in
  let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (sq /. float_of_int (List.length xs))

let ratio a b =
  if Float.classify_float b = Float.FP_zero then Float.infinity else a /. b
