type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64 expands the seed into four well-mixed initial words, which is
   the initialization the xoshiro authors prescribe. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let st = ref (Int64.of_int seed) in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tt = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tt;
  t.s3 <- rotl t.s3 45;
  result

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Rejection-free modulo is fine here: bounds are tiny next to 2^62, so
     the bias is immeasurable for circuit generation. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t bound =
  (* 53 high bits -> uniform double in [0,1). *)
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (v *. 0x1p-53)

let angle t = float t (2.0 *. Float.pi)

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t =
  let seed = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  create seed

let derive seed index =
  if index < 0 then invalid_arg "Rng.derive: index must be >= 0";
  (* One golden-ratio stride per index keeps distinct (seed, index) pairs
     on distinct splitmix streams, then one splitmix step mixes the pair;
     the shift keeps the result a nonnegative OCaml int. *)
  let st =
    ref
      (Int64.add (Int64.of_int seed)
         (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L))
  in
  Int64.to_int (Int64.shift_right_logical (splitmix64 st) 2)
