(** Deterministic pseudo-random number generation.

    All benchmark circuits are generated from explicit seeds so that every
    run — tests, examples, benchmarks — sees the same circuits. The
    generator is xoshiro256**, seeded through splitmix64, the combination
    recommended by the xoshiro authors. *)

type t

val create : int -> t
(** [create seed] builds a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val next : t -> int64
(** Raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound > 0] required. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val angle : t -> float
(** Uniform rotation angle in [\[0, 2π)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> t
(** [split t] advances [t] and returns a generator with a decorrelated
    stream; used to hand independent streams to parallel workers. *)

val derive : int -> int -> int
(** [derive seed index] is a stateless splitmix64-mixed sub-seed for the
    [index]-th item under a base [seed]: manifest jobs without an explicit
    seed get [derive base line_index], so a whole batch is reproducible
    from one number. Always nonnegative; [index >= 0] required. *)
