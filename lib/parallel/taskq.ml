(* A job-level task executor: [slots] dedicated domains pull one-shot
   tasks from a priority queue (max-priority first, FIFO within a
   priority). This is the complement of [Pool]: a pool fans one
   data-parallel job out over every worker, a task queue runs many
   independent jobs one-per-slot. The batch scheduler layers deadlines,
   retries and cancellation on top of it (lib/sched).

   Tasks are heap entries of (priority, admission sequence); each entry
   owns a closure that resolves its handle. Aborting a queued task just
   flips the handle state — the dead entry is skipped when a worker pops
   it, which keeps the heap free of random deletions. *)

let c_submitted = Obs.counter "taskq.submitted"
let c_executed = Obs.counter "taskq.executed"
let c_aborted = Obs.counter "taskq.aborted"
let g_queue_peak = Obs.gauge "taskq.queue_peak"
let s_run = Obs.span "taskq.task_run"

exception Aborted

(* [exec ~run:true] executes the task (worker side); [exec ~run:false]
   abandons a still-queued task at shutdown. Both are called with the
   queue mutex held and return with it held. *)
type entry = { prio : int; seq : int; exec : run:bool -> unit }

type t = {
  slots : int;
  mutex : Mutex.t;
  cond_task : Condition.t;      (* a task was queued, the queue started, or stop *)
  cond_done : Condition.t;      (* some handle reached a final state *)
  mutable heap : entry option array;
  mutable heap_len : int;
  mutable seq : int;
  mutable live : int;           (* submitted, not yet Done/Aborted *)
  mutable started : bool;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

type 'a state = Queued | Running | Done of ('a, exn) result | Stopped
type 'a handle = { q : t; mutable st : 'a state }

(* Every critical section below runs under this combinator so an
   exception inside it (a resize failure in [heap_push], an [invalid_arg]
   on a stopped queue) can never leave [t.mutex] held and deadlock every
   worker — the discipline qcs_lint's mutex-discipline rule enforces. The
   worker loop is the one exception: it hands the lock over around the
   task body and carries an inline suppression. *)
let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* --- binary max-heap on (prio, -seq), guarded by t.mutex ------------- *)

let entry_before a b = a.prio > b.prio || (a.prio = b.prio && a.seq < b.seq)

let heap_get t i = match t.heap.(i) with Some e -> e | None -> assert false

let heap_push t e =
  if t.heap_len = Array.length t.heap then begin
    let bigger = Array.make (Int.max 8 (2 * t.heap_len)) None in
    Array.blit t.heap 0 bigger 0 t.heap_len;
    t.heap <- bigger
  end;
  t.heap.(t.heap_len) <- Some e;
  t.heap_len <- t.heap_len + 1;
  let i = ref (t.heap_len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    entry_before (heap_get t !i) (heap_get t parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done;
  Obs.max_gauge g_queue_peak t.heap_len

let heap_pop t =
  let top = heap_get t 0 in
  t.heap_len <- t.heap_len - 1;
  t.heap.(0) <- t.heap.(t.heap_len);
  t.heap.(t.heap_len) <- None;
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let best = ref !i in
    if l < t.heap_len && entry_before (heap_get t l) (heap_get t !best) then best := l;
    if r < t.heap_len && entry_before (heap_get t r) (heap_get t !best) then best := r;
    if !best = !i then continue := false
    else begin
      let tmp = t.heap.(!best) in
      t.heap.(!best) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !best
    end
  done;
  top

(* --- workers ---------------------------------------------------------- *)

(* Hand-over-hand: [e.exec ~run:true] releases the lock around the task
   body and retakes it to resolve the handle, a shape Fun.protect cannot
   express.  qcs-lint: allow mutex-discipline *)
let worker_loop t =
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while (not t.stop) && (t.heap_len = 0 || not t.started) do
      Condition.wait t.cond_task t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      let e = heap_pop t in
      e.exec ~run:true;
      Mutex.unlock t.mutex
    end
  done

let create ?(paused = false) slots =
  if slots < 1 then invalid_arg "Taskq.create: slots must be >= 1";
  let t =
    { slots;
      mutex = Mutex.create ();
      cond_task = Condition.create ();
      cond_done = Condition.create ();
      heap = Array.make 16 None;
      heap_len = 0;
      seq = 0;
      live = 0;
      started = not paused;
      stop = false;
      domains = [] }
  in
  t.domains <- List.init slots (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let slots t = t.slots

let start t =
  locked t (fun () ->
      if not t.started then begin
        t.started <- true;
        Condition.broadcast t.cond_task
      end)

let submit ?(priority = 0) t f =
  let h = { q = t; st = Queued } in
  let exec ~run =
    match h.st with
    | Stopped -> ()                      (* aborted while queued; skip *)
    | Queued when not run ->
      h.st <- Stopped;
      t.live <- t.live - 1;
      Condition.broadcast t.cond_done
    | Queued ->
      h.st <- Running;
      Mutex.unlock t.mutex;
      Obs.incr c_executed;
      let r = try Ok (Obs.with_span s_run f) with e -> Error e in
      Mutex.lock t.mutex;
      h.st <- Done r;
      t.live <- t.live - 1;
      Condition.broadcast t.cond_done
    | Running | Done _ -> assert false
  in
  locked t (fun () ->
      if t.stop then invalid_arg "Taskq.submit: queue is shut down";
      Obs.incr c_submitted;
      let e = { prio = priority; seq = t.seq; exec } in
      t.seq <- t.seq + 1;
      t.live <- t.live + 1;
      heap_push t e;
      if t.started then Condition.signal t.cond_task);
  h

let try_abort h =
  let t = h.q in
  locked t (fun () ->
      match h.st with
      | Queued ->
        h.st <- Stopped;
        t.live <- t.live - 1;
        Obs.incr c_aborted;
        Condition.broadcast t.cond_done;
        true
      | Running | Done _ | Stopped -> false)

let await h =
  let t = h.q in
  locked t (fun () ->
      while (match h.st with Queued | Running -> true | Done _ | Stopped -> false) do
        Condition.wait t.cond_done t.mutex
      done;
      match h.st with Done r -> r | Stopped -> Error Aborted | _ -> assert false)

let peek h =
  let t = h.q in
  locked t (fun () ->
      match h.st with
      | Done r -> Some r
      | Stopped -> Some (Error Aborted)
      | Queued | Running -> None)

let pending t = locked t (fun () -> t.live)

let wait_idle t =
  locked t (fun () ->
      if not t.started then begin
        t.started <- true;
        Condition.broadcast t.cond_task
      end;
      while t.live > 0 do
        Condition.wait t.cond_done t.mutex
      done)

let shutdown t =
  let domains =
    locked t (fun () ->
        if t.stop then []
        else begin
          t.stop <- true;
          (* Queued-but-never-run tasks resolve to Aborted so awaiters unblock. *)
          for i = 0 to t.heap_len - 1 do
            (heap_get t i).exec ~run:false;
            t.heap.(i) <- None
          done;
          t.heap_len <- 0;
          Condition.broadcast t.cond_task;
          Condition.broadcast t.cond_done;
          let ds = t.domains in
          t.domains <- [];
          ds
        end)
  in
  List.iter Domain.join domains

let with_queue ?paused slots f =
  let t = create ?paused slots in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
