(** A fixed-size domain (OS thread) pool with fork-join semantics.

    The paper's engine parallelizes three different workloads — DMAV task
    lists, DD-to-array conversion, and buffer summation — over a fixed
    number of worker threads. This module is the substrate: a pool of
    [size - 1] worker domains plus the calling domain, exposing a barrier-
    style [run] (every worker index executes a function once) and a
    dynamically load-balanced [parallel_for].

    Pools are cheap to use repeatedly (workers sleep on a condition
    variable between jobs) but creating one spawns domains, so harness code
    keeps a pool alive across a whole experiment. A pool of size 1 never
    spawns domains and runs everything inline, which keeps single-threaded
    baselines free of synchronization overhead.

    A pool may be shared by concurrent callers (the batch scheduler runs
    many simulations over one pool): fork-join jobs are admitted one at a
    time under an internal admission lock, so concurrent [run] /
    [parallel_for] calls serialize against each other instead of
    corrupting the pool. The accumulated admission wait is exported as the
    [pool.admission_wait] span. For one-shot task submission with futures
    see {!Taskq}. *)

type t

val create : int -> t
(** [create size] builds a pool with total parallelism [size >= 1]
    ([size - 1] worker domains are spawned). The size is clamped to
    [Domain.recommended_domain_count ()] workers only by the caller's
    choice — oversubscription is allowed for scalability experiments. *)

val size : t -> int
(** Total parallelism, including the calling domain. *)

val run : t -> (int -> unit) -> unit
(** [run t f] executes [f w] once for every worker index
    [w = 0 .. size - 1], in parallel, and returns when all are done.
    [f 0] runs on the calling domain. Exceptions raised by any worker are
    re-raised on the caller after the join. Safe to call from several
    domains at once: whole jobs serialize on the admission lock. *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] for each [lo <= i < hi],
    distributing chunks of iterations over the pool with a shared atomic
    cursor. [chunk] defaults to a size that yields roughly 8 chunks per
    worker. *)

val parallel_for_ranges :
  ?chunk:int -> t -> lo:int -> hi:int -> (int -> int -> unit) -> unit
(** Like {!parallel_for} but hands out half-open ranges [f lo' hi'] so hot
    loops can run without per-index closure calls. *)

val shutdown : t -> unit
(** Terminates the worker domains. The pool must not be used afterwards.
    Idempotent. *)

val with_pool : int -> (t -> 'a) -> 'a
(** [with_pool size f] creates a pool, applies [f], and always shuts the
    pool down. *)
