(** Job-level task submission with futures — the complement of {!Pool}.

    A {!Pool.t} fans one data-parallel job out over every worker; a
    [Taskq.t] runs many {e independent} one-shot tasks, one per slot, in
    max-priority order with FIFO ordering inside a priority class. The
    batch scheduler (`lib/sched`) submits whole simulations here while
    their inner data-parallel phases share a single pool.

    Slots are dedicated domains. A task raising is captured in its handle
    and never kills a slot. Instrumented as
    [taskq.{submitted,executed,aborted}], gauge [taskq.queue_peak] and
    span [taskq.task_run]. *)

type t

exception Aborted
(** Resolution of a task that was aborted while queued (or dropped by
    {!shutdown} before it ever ran). *)

type 'a handle
(** A future for one submitted task. *)

val create : ?paused:bool -> int -> t
(** [create slots] spawns [slots >= 1] worker domains. With [~paused:true]
    workers idle until {!start}, so a batch of tasks can be queued first
    and then dispatched strictly in priority order.
    @raise Invalid_argument if [slots < 1]. *)

val slots : t -> int

val start : t -> unit
(** Releases a queue created with [~paused:true]. Idempotent. *)

val submit : ?priority:int -> t -> (unit -> 'a) -> 'a handle
(** Queues a task. Higher [priority] (default 0) runs first; equal
    priorities run in submission order.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a handle -> ('a, exn) result
(** Blocks until the task resolves. [Error Aborted] if it was aborted. *)

val peek : 'a handle -> ('a, exn) result option
(** [None] while the task is queued or running. *)

val try_abort : 'a handle -> bool
(** Aborts the task iff it is still queued; a queued task that is aborted
    will never execute and {!await} returns [Error Aborted]. Returns
    [false] when the task already started (or finished) — running tasks
    must be cancelled cooperatively by the caller's own flag. *)

val pending : t -> int
(** Tasks submitted and not yet resolved (queued + running). *)

val wait_idle : t -> unit
(** Blocks until every submitted task has resolved (starting the queue if
    it was paused). *)

val shutdown : t -> unit
(** Waits for running tasks, drops queued ones (their handles resolve to
    [Error Aborted]) and joins the slot domains. Idempotent. Call
    {!wait_idle} first to drain instead of drop. *)

val with_queue : ?paused:bool -> int -> (t -> 'a) -> 'a
(** Bracket: create, apply, always shut down. *)
