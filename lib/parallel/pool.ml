type job = (int -> unit) option

(* Global instrumentation: jobs posted, parallel_for dispatches, and the
   accumulated busy time of all workers (the caller's share included). The
   busy span's count is worker-job executions, not jobs. The admission span
   accumulates the time concurrent callers spent waiting for the pool. *)
let c_jobs = Obs.counter "pool.jobs"
let c_parallel_for = Obs.counter "pool.parallel_for"
let s_busy = Obs.span "pool.worker_busy"
let s_admission = Obs.span "pool.admission_wait"

let timed_apply f w =
  if Obs.enabled () then Obs.with_span s_busy (fun () -> f w) else f w

(* Under FLATDD_CHECK the worker's share is bracketed (keyed by the
   pool's identity) so the checker can refuse re-entrant admission: a
   worker re-entering [run] on its own pool would deadlock on the
   admission mutex, while nesting a different pool is fine. *)
let guarded_apply ~key f w =
  if Check.enabled () then begin
    Check.enter_job ~key;
    Fun.protect ~finally:(fun () -> Check.leave_job ~key) (fun () -> timed_apply f w)
  end
  else timed_apply f w

let pool_ids = Atomic.make 0

type t = {
  id : int;                     (* process-unique, keys the re-entrancy check *)
  size : int;
  admission : Mutex.t;          (* serializes whole fork-join jobs across callers *)
  mutex : Mutex.t;
  cond_job : Condition.t;       (* signalled when a new job (or shutdown) is posted *)
  cond_done : Condition.t;      (* signalled when a worker finishes its share *)
  mutable job : job;
  mutable generation : int;     (* job sequence number; workers run each generation once *)
  mutable pending : int;        (* workers still running the current job *)
  mutable stop : bool;
  mutable failure : exn option; (* first exception raised by any worker *)
  mutable domains : unit Domain.t list;
}

(* Worker loop: wait for a fresh generation, run the job with this worker's
   index, report completion. The invariant is that [job]/[generation] are
   only written while [pending = 0], so a worker never observes a torn
   job/generation pair. *)
(* Hand-over-hand: the lock is released around the job body and retaken
   to report completion; Fun.protect cannot express that shape, and the
   job body itself is exception-fenced.  qcs-lint: allow mutex-discipline *)
let worker_loop t w my_gen =
  let my_gen = ref my_gen in
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    while (not t.stop) && t.generation = !my_gen do
      Condition.wait t.cond_job t.mutex
    done;
    if t.stop then begin
      Mutex.unlock t.mutex;
      continue := false
    end
    else begin
      my_gen := t.generation;
      let f = match t.job with Some f -> f | None -> fun _ -> () in
      Mutex.unlock t.mutex;
      let result = try Ok (guarded_apply ~key:t.id f w) with e -> Error e in
      Mutex.lock t.mutex;
      (match result with
       | Ok () -> ()
       | Error e -> if t.failure = None then t.failure <- Some e);
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.cond_done;
      Mutex.unlock t.mutex
    end
  done

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  let t =
    { id = Atomic.fetch_and_add pool_ids 1;
      size;
      admission = Mutex.create ();
      mutex = Mutex.create ();
      cond_job = Condition.create ();
      cond_done = Condition.create ();
      job = None;
      generation = 0;
      pending = 0;
      stop = false;
      failure = None;
      domains = [] }
  in
  let spawn w = Domain.spawn (fun () -> worker_loop t w 0) in
  t.domains <- List.init (size - 1) (fun i -> spawn (i + 1));
  t

let size t = t.size

(* Concurrent callers (e.g. scheduler slots sharing one pool) are admitted
   one fork-join job at a time: the admission mutex is held for the whole
   job, so [job]/[generation]/[pending] only ever see a single driver. A
   size-1 pool runs inline and needs no admission. *)
let run t f =
  if t.stop then invalid_arg "Pool.run: pool is shut down";
  Obs.incr c_jobs;
  if t.size = 1 then timed_apply f 0
  else begin
    if Check.enabled () then Check.guard_admission ~what:"Pool.run" ~key:t.id;
    if Obs.enabled () then Obs.with_span s_admission (fun () -> Mutex.lock t.admission)
    else Mutex.lock t.admission;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.admission)
      (fun () ->
         if t.stop then invalid_arg "Pool.run: pool is shut down";
         Mutex.lock t.mutex;
         t.job <- Some f;
         t.failure <- None;
         t.pending <- t.size - 1;
         t.generation <- t.generation + 1;
         Condition.broadcast t.cond_job;
         Mutex.unlock t.mutex;
         let caller_result = try Ok (guarded_apply ~key:t.id f 0) with e -> Error e in
         Mutex.lock t.mutex;
         while t.pending > 0 do
           Condition.wait t.cond_done t.mutex
         done;
         t.job <- None;
         let failure = t.failure in
         Mutex.unlock t.mutex;
         match caller_result, failure with
         | Error e, _ -> raise e
         | Ok (), Some e -> raise e
         | Ok (), None -> ())
  end

let default_chunk t ~lo ~hi =
  let span = hi - lo in
  let target = t.size * 8 in
  Int.max 1 ((span + target - 1) / target)

let parallel_for_ranges ?chunk t ~lo ~hi f =
  if hi > lo then begin
    Obs.incr c_parallel_for;
    let chunk = match chunk with Some c -> Int.max 1 c | None -> default_chunk t ~lo ~hi in
    if t.size = 1 || hi - lo <= chunk then f lo hi
    else begin
      let cursor = Atomic.make lo in
      (* Check mode: every chunk a domain receives is claimed on a region
         scoped to this dispatch, so a cursor bug handing the same index
         range to two domains is caught as a race before [f] runs. *)
      let claim =
        if Check.enabled () then begin
          let r = Check.region ~name:"pool.parallel_for" in
          fun a b -> Check.claim r ~owner:(Domain.self () :> int) ~lo:a ~hi:b
        end
        else fun _ _ -> ()
      in
      let work _w =
        let continue = ref true in
        while !continue do
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= hi then continue := false
          else begin
            let stop = Int.min hi (start + chunk) in
            claim start stop;
            f start stop
          end
        done
      in
      run t work
    end
  end

let parallel_for ?chunk t ~lo ~hi f =
  parallel_for_ranges ?chunk t ~lo ~hi (fun a b ->
      for i = a to b - 1 do
        f i
      done)

let shutdown t =
  if not t.stop then begin
    Mutex.lock t.mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.mutex)
      (fun () ->
         t.stop <- true;
         Condition.broadcast t.cond_job);
    List.iter Domain.join t.domains;
    t.domains <- []
  end

let with_pool size f =
  let t = create size in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
