type model = {
  depolarizing : float;
  dephasing : float;
}

let ideal = { depolarizing = 0.0; dephasing = 0.0 }

let depolarizing p =
  if p < 0.0 || p > 1.0 then invalid_arg "Noise.depolarizing";
  { ideal with depolarizing = p }

let dephasing p =
  if p < 0.0 || p > 1.0 then invalid_arg "Noise.dephasing";
  { ideal with dephasing = p }

let error_ops rng model q =
  let acc = ref [] in
  if model.depolarizing > 0.0 && Rng.float rng 1.0 < model.depolarizing then begin
    let name, matrix =
      match Rng.int rng 3 with
      | 0 -> ("nx", Gate.x)
      | 1 -> ("ny", Gate.y)
      | _ -> ("nz", Gate.z)
    in
    acc := Circuit.Single { name; matrix; target = q; controls = [] } :: !acc
  end;
  if model.dephasing > 0.0 && Rng.float rng 1.0 < model.dephasing then
    acc := Circuit.Single { name = "nz"; matrix = Gate.z; target = q; controls = [] } :: !acc;
  !acc

let sample_trajectory ?rng model (c : Circuit.t) =
  let rng = match rng with Some r -> r | None -> Rng.create 1 in
  if Float.equal model.depolarizing 0.0 && Float.equal model.dephasing 0.0 then c
  else begin
    let ops = ref [] in
    Array.iter
      (fun op ->
         ops := op :: !ops;
         List.iter
           (fun q -> List.iter (fun e -> ops := e :: !ops) (error_ops rng model q))
           (Circuit.op_qubits op))
      c.Circuit.ops;
    { c with
      Circuit.name = c.Circuit.name ^ "+noise";
      ops = Array.of_list (List.rev !ops) }
  end

let trajectories ?(seed = 1) model c ~count =
  let master = Rng.create seed in
  List.init count (fun _ ->
      let rng = Rng.split master in
      sample_trajectory ~rng model c)

let expected_insertions model (c : Circuit.t) =
  Array.fold_left
    (fun acc op ->
       acc
       +. (float_of_int (List.length (Circuit.op_qubits op))
           *. (model.depolarizing +. model.dephasing)))
    0.0 c.Circuit.ops
