(** Exponentially weighted moving average of the state DD size, deciding
    when to convert from DD simulation to DMAV (paper §3.1.1).

    After gate [i] with state-DD size [sᵢ]:
    [vᵢ = β·vᵢ₋₁ + (1-β)·sᵢ], and the simulation converts when
    [ε·vᵢ < sᵢ] — i.e. when the current size spikes above the smoothed
    history by more than the threshold factor implied by ε and β.

    One deviation from the paper's description: the paper initializes
    [v₀ = 0], under which the very first observation would always trigger
    ([ε·(1-β)·s₁ < s₁] for the recommended β = 0.9, ε = 2). We initialize
    [v₀] to the first observed size instead, which preserves the intended
    behaviour — no conversion while the size tracks its history, prompt
    conversion during regime change. *)

type t

type verdict = Stay | Convert

val create : beta:float -> epsilon:float -> t
(** Requires [0 ≤ β < 1] and [ε > 0]. *)

val observe : t -> float -> verdict
(** Feed the next DD size; returns whether to convert now. After a
    [Convert] verdict the monitor keeps accepting observations (callers
    normally stop consulting it). *)

val value : t -> float
(** Current smoothed size [vᵢ] (0 before any observation). *)
