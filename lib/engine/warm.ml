(* Warm engine-state handles: the per-run allocations Driver.run would
   otherwise rebuild from scratch — the DD package (arenas, unique tables,
   ctable, compute caches) and the 2ⁿ DMAV workspace buffers — kept in a
   keyed cache and reused across jobs.

   Correctness contract: a handle is returned to the cache only through
   [release], which runs [Dd.reset] — semantically a fresh package at
   grown capacity — so a warm run computes bit-identical amplitudes to a
   cold one. Privacy contract: when a handle last served a different
   tenant, [acquire] scrubs the workspace free list (zeroing every cached
   amplitude buffer) before handing it out, so no tenant ever receives a
   buffer still holding another tenant's state. *)

let c_hits = Obs.counter "serve.warm_hits"
let c_misses = Obs.counter "serve.warm_misses"
let c_scrubs = Obs.counter "serve.warm_scrubs"
let c_evictions = Obs.counter "serve.warm_evictions"
let g_idle = Obs.gauge "serve.warm_idle"

type handle = {
  h_n : int;
  package : Dd.package;
  workspace : Dmav.workspace;
  mutable last_tenant : string;
}

type t = {
  mutex : Mutex.t;
  capacity : int;
  mutable idle : handle list; (* MRU first *)
}

let create ?(capacity = 8) () =
  if capacity < 0 then invalid_arg "Warm.create: capacity must be >= 0";
  { mutex = Mutex.create (); capacity; idle = [] }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let idle_handles t = locked t (fun () -> List.length t.idle)

(* Pop the most recently released handle built for [n] qubits; the
   package itself is size-agnostic but the workspace buffers are 2ⁿ. *)
let pop_match t ~n =
  let rec go acc = function
    | [] -> None
    | h :: rest when h.h_n = n ->
      t.idle <- List.rev_append acc rest;
      Some h
    | h :: rest -> go (h :: acc) rest
  in
  go [] t.idle

let acquire t ?(tenant = "") ~n () =
  let found = locked t (fun () -> pop_match t ~n) in
  let h =
    match found with
    | Some h ->
      Obs.incr c_hits;
      if not (String.equal h.last_tenant tenant) then begin
        ignore (Dmav.scrub_workspace h.workspace);
        Obs.incr c_scrubs
      end;
      h
    | None ->
      Obs.incr c_misses;
      { h_n = n; package = Dd.create (); workspace = Dmav.workspace ~n; last_tenant = tenant }
  in
  h.last_tenant <- tenant;
  Obs.set_gauge g_idle (idle_handles t);
  h

(* The caller must be done with every edge and result derived from this
   handle's package (a Dd_state final, in particular) before releasing —
   [Dd.reset] kills them all. *)
let release t h =
  Dd.reset h.package;
  let evicted =
    locked t (fun () ->
        t.idle <- h :: t.idle;
        if List.length t.idle > t.capacity then begin
          let keep = List.filteri (fun i _ -> i < t.capacity) t.idle in
          let dropped = List.length t.idle - List.length keep in
          t.idle <- keep;
          dropped
        end
        else 0)
  in
  if evicted > 0 then Obs.add c_evictions evicted;
  Obs.set_gauge g_idle (idle_handles t)

let drop_all t = locked t (fun () -> t.idle <- [])
