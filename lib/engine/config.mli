(** FlatDD engine configuration. *)

type fusion_mode =
  | No_fusion
  | Dmav_aware          (** Algorithm 3, the paper's contribution *)
  | K_operations of int (** fixed-size DDMM grouping (DATE'19 baseline) *)

type conversion_policy =
  | Ewma_policy           (** monitor the DD size with β/ε (the default) *)
  | Convert_at of int     (** unconditionally convert after this gate index *)
  | Never_convert         (** stay in DD simulation (ablation / baseline) *)

type order_mode =
  | No_order      (** identity qubit order — byte-identical legacy behavior *)
  | Static_order  (** pre-simulation interaction-graph scoring pass *)
  | Sift_order    (** static pass + in-arena sifting when EWMA would convert *)

val order_name : order_mode -> string
(** ["none"] / ["static"] / ["sift"] — the CLI/manifest spelling. *)

val order_of_name : string -> order_mode option

type precision =
  | F64  (** double precision — the default, byte-identical results *)
  | F32  (** float32 amplitude plane — half the bytes per flat-phase gate *)

val precision_name : precision -> string
(** ["f64"] / ["f32"] — the CLI/manifest spelling. *)

val precision_of_name : string -> precision option

type t = {
  threads : int;          (** total worker parallelism (≥ 1) *)
  beta : float;           (** EWMA smoothing, paper uses 0.9 *)
  epsilon : float;        (** conversion threshold, paper uses 2.0 *)
  simd_width : int;       (** the [d] of the cost model, 4 ≈ AVX2 doubles *)
  fusion : fusion_mode;
  policy : conversion_policy;
  compact_every : int;    (** DD-package GC interval in gates; 0 = never *)
  trace : bool;           (** record the per-gate trace *)
  dense_dispatch : bool;
  (** When set, the driver cost-models each unfused flat-phase gate and may
      route it to the dense direct-apply kernels ([Apply.single]/[Apply.two])
      instead of a DMAV multiplication. Off by default so the stock DMAV
      phase stays bit-for-bit reproducible. *)
  dd_domains : int;
  (** DD-phase domain count (≥ 1). When > 1 the DD engine shards its
      unique/compute tables and applies each gate with {!Dd.mv_par} over a
      dedicated pool of this many domains. 1 (the default) keeps the
      sequential single-domain regime. *)
  dd_task_depth : int;
  (** Recursion depth at which the parallel DD apply splits into tasks.
      0 (the default) picks automatically from [dd_domains]. *)
  order : order_mode;
  (** Qubit-order policy (`--order`). Results are always reported in the
      logical basis regardless of this setting. *)
  precision : precision;
  (** Amplitude-plane precision (`--precision`). [F32] routes the flat
      phase (and the dense reference engine) through the float32 storage
      kind; extracted amplitudes are widened back to f64. The DD phase and
      its ctable weights always stay f64. *)
}

val default : t
(** 1 thread, β = 0.9, ε = 2.0, d = 4, no fusion, EWMA policy,
    compaction every 64 gates, no trace, no dense dispatch, 1 DD domain,
    no order optimization. *)

val with_threads : int -> t -> t
val with_dd_domains : int -> t -> t
