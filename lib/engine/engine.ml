(** The stepwise engine abstraction.

    An {!ENGINE} is one way of holding a quantum state and advancing it by
    one gate: DD simulation ([Dd_engine]), flat-array DMAV with per-gate
    kernel dispatch ([Dmav_engine]), or dense direct application
    ([Dense_engine]). Everything cross-cutting — the conversion policy,
    cooperative cancellation, trace records, peak-memory tracking, phase
    spans — lives in {!Driver}, which steps an engine gate by gate and owns
    the transitions between engines. An engine only knows how to apply one
    {!exec_op} and report what it did. *)

type phase = Dd_phase | Conversion | Dmav_phase

(** Which kernel executed a flat-phase gate. *)
type dispatch = Dmav_cached | Dmav_uncached | Dense_direct

(** One entry of the per-gate trace (field-compatible superset of the
    pre-refactor [Simulator.gate_record]; [dispatch] is new). *)
type gate_record = {
  index : int;            (** index into the (possibly fused) gate stream *)
  name : string;
  seconds : float;
  phase : phase;
  dd_size : int;          (** state DD nodes (DD phase only; 0 after) *)
  ewma : float;           (** monitor value when this gate finished *)
  cached : bool option;   (** DMAV kernel choice, when applicable *)
  dispatch : dispatch option;  (** flat-phase kernel dispatch, when applicable *)
}

type final_state =
  | Dd_state of { package : Dd.package; edge : Dd.vedge }
  | Flat_state of Buf.t

(* Modeled bytes of the flat phase: V, W and the partial-output buffers.
   Exact per-buffer accounting from the storage kind — payload bytes plus
   the bigarray custom block plus the wrapping record — instead of the old
   [16·2ⁿ + 24] float-array guess. *)
let memory_bytes_flat n ~buffers =
  (2 + buffers) * (Storage.F64.buffer_bytes ~len:(1 lsl n) + 24)

(** What one [apply_op] call did, for the driver's accounting. Engines
    fill only the fields that apply to them (a DD step has no kernel
    choice, a dense step no cache hits). *)
type gate_stats = {
  gs_cached : bool option;
  gs_dispatch : dispatch option;
  gs_cache_hits : int;
  gs_buffers_used : int;
  gs_modeled_macs : float;
}

let no_stats =
  { gs_cached = None;
    gs_dispatch = None;
    gs_cache_hits = 0;
    gs_buffers_used = 0;
    gs_modeled_macs = 0.0 }

(** One item of the executable gate stream. The driver builds these: in
    the DD phase straight from circuit ops; in the flat phase from the
    (possibly fused) matrix list, keeping the original op when the gate
    survived fusion so the dense kernel stays eligible, plus the driver's
    dispatch choice for the gate. *)
type exec_op = {
  xo_index : int;                     (** trace index *)
  xo_name : string;
  xo_op : Circuit.op option;          (** original circuit op, if unfused *)
  xo_mat : Dd.medge option;           (** prebuilt matrix DD, if any *)
  xo_dispatch : Cost.dispatch option; (** driver's kernel pick, if any *)
}

let exec_of_op i (op : Circuit.op) =
  { xo_index = i;
    xo_name = Circuit.op_name op;
    xo_op = Some op;
    xo_mat = None;
    xo_dispatch = None }

(** Everything an engine may need but does not own: the worker pool, the
    run configuration, the DD package (shared across engines so the flat
    phase can build gate matrices in the same unique table the DD phase
    populated), and the scratch-buffer workspace. *)
type ctx = {
  cfg : Config.t;
  pool : Pool.t;
  package : Dd.package;
  workspace : Dmav.workspace;
}

module type ENGINE = sig
  type state

  val name : string

  val trace_phase : phase
  (** Which trace phase this engine's gates report as ([Dd_phase] for DD
      engines, [Dmav_phase] for flat ones). *)

  val init : ctx -> n:int -> state
  (** |0…0⟩ over [n] qubits. *)

  val apply_op : state -> exec_op -> gate_stats
  (** Advance the state by one gate. This is the call the driver times for
      the per-gate trace, so it must do nothing but the application. *)

  val size_metric : state -> int
  (** The quantity the conversion monitor watches — state-DD node count
      for DD engines, 0 for flat ones. Called outside the timed region. *)

  val memory_bytes : state -> int
  (** Modeled bytes currently held (peak-so-far for phase-level buffers). *)

  val compact : state -> unit
  (** Reclaim dead internal storage (DD garbage collection); may be a
      no-op. The driver calls it on the configured interval. *)

  val observe : state -> unit
  (** Push engine gauges into [Obs] (no-op while metrics are disabled). *)

  val extract : state -> final_state
  (** The final state, ownership transferred to the caller. *)

  val finalize : state -> unit
  (** Release everything [extract] did not hand over (e.g. return scratch
      buffers to the workspace). Call after [extract]. *)
end

(** An engine packed with its state, the unit the driver steps. *)
type packed = Packed : (module ENGINE with type state = 's) * 's -> packed
