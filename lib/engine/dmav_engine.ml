(* The flat-array engine: the state is a pair of 2ⁿ buffers (current [v],
   scratch [w]) and a gate is a DD-matrix × array-vector product (paper
   §3.2), or — when the driver's dispatch picked it — a dense in-place
   [Apply] kernel on [v] that skips the ping-pong entirely. The scratch
   buffer and the cached kernel's partial outputs come from the shared
   workspace and go back to it in [finalize]. *)

type state = {
  ctx : Engine.ctx;
  n : int;
  mutable v : Buf.t;
  mutable w : Buf.t;
  mutable max_buffers : int;
  mutable extracted : bool;
}

let name = "dmav"
let trace_phase = Engine.Dmav_phase

(* Seat the engine on an existing amplitude vector — the driver's DD→flat
   conversion hands its output buffer straight in here. *)
let of_buf (ctx : Engine.ctx) ~n buf =
  if Buf.length buf <> 1 lsl n then invalid_arg "Dmav_engine.of_buf: wrong length";
  { ctx; n; v = buf; w = Dmav.take ctx.Engine.workspace; max_buffers = 0; extracted = false }

let init (ctx : Engine.ctx) ~n =
  let v = Dmav.take ctx.Engine.workspace in
  Buf.fill_zero v;
  Buf.set v 0 Cnum.one;
  of_buf ctx ~n v

let mat_of st (xo : Engine.exec_op) =
  match xo.Engine.xo_mat with
  | Some m -> m
  | None ->
    (match xo.Engine.xo_op with
     | Some op -> Mat_dd.of_op st.ctx.Engine.package ~n:st.n op
     | None -> invalid_arg "Dmav_engine.apply_op: op without matrix or circuit op")

let apply_dmav st (xo : Engine.exec_op) decided =
  let m = mat_of st xo in
  let s =
    match decided with
    | Some decision ->
      Dmav.apply_decided ~workspace:st.ctx.Engine.workspace st.ctx.Engine.package
        ~pool:st.ctx.Engine.pool ~n:st.n decision m ~v:st.v ~w:st.w
    | None ->
      Dmav.apply ~workspace:st.ctx.Engine.workspace st.ctx.Engine.package
        ~pool:st.ctx.Engine.pool
        ~simd_width:st.ctx.Engine.cfg.Config.simd_width ~n:st.n m ~v:st.v ~w:st.w
  in
  if s.Dmav.buffers_used > st.max_buffers then st.max_buffers <- s.Dmav.buffers_used;
  let tmp = st.v in
  st.v <- st.w;
  st.w <- tmp;
  { Engine.gs_cached = Some s.Dmav.used_cache;
    gs_dispatch =
      Some (if s.Dmav.used_cache then Engine.Dmav_cached else Engine.Dmav_uncached);
    gs_cache_hits = s.Dmav.cache_hits;
    gs_buffers_used = s.Dmav.buffers_used;
    gs_modeled_macs = Cost.modeled_macs s.Dmav.decision }

let apply_op st (xo : Engine.exec_op) =
  match xo.Engine.xo_dispatch with
  | Some ({ Cost.kernel = Cost.Dense_kernel; _ } as disp) ->
    let op =
      match xo.Engine.xo_op with
      | Some op -> op
      | None -> invalid_arg "Dmav_engine.apply_op: dense dispatch on a fused gate"
    in
    Apply.op ~pool:st.ctx.Engine.pool (State.of_buf st.n st.v) op;
    { Engine.no_stats with
      Engine.gs_dispatch = Some Engine.Dense_direct;
      gs_modeled_macs = Cost.dispatch_modeled_macs disp }
  | Some { Cost.dmav; _ } -> apply_dmav st xo (Some dmav)
  | None -> apply_dmav st xo None

let size_metric _ = 0

let memory_bytes st =
  Engine.memory_bytes_flat st.n ~buffers:st.max_buffers
  + Dd.memory_bytes st.ctx.Engine.package

let compact _ = ()
let observe st = Dd.observe_gauges st.ctx.Engine.package

let extract st =
  st.extracted <- true;
  Engine.Flat_state st.v

let finalize st =
  Dmav.give st.ctx.Engine.workspace st.w;
  if not st.extracted then Dmav.give st.ctx.Engine.workspace st.v
