(* DD simulation as a stepwise engine: the state is a vector DD in the
   shared package; a gate is built as a matrix DD and applied with the
   compute-cached DD matrix-vector product.

   When [Config.dd_domains] > 1 the engine owns a dedicated pool of that
   many domains and applies each gate with [Dd.mv_par]; the package is
   switched into its sharded parallel regime for the engine's lifetime
   and restored (and the pool shut down) in [finalize]/[release], so the
   conversion and flat phases always see a quiesced sequential package. *)

type state = {
  ctx : Engine.ctx;
  n : int;
  mutable edge : Dd.vedge;
  mutable dpool : Pool.t option;
  task_depth : int option;
}

let name = "dd"
let trace_phase = Engine.Dd_phase

let init (ctx : Engine.ctx) ~n =
  let cfg = ctx.Engine.cfg in
  let domains = cfg.Config.dd_domains in
  let dpool =
    if domains > 1 then begin
      Dd.enable_parallel ctx.Engine.package ~domains;
      Some (Pool.create domains)
    end
    else None
  in
  let task_depth =
    if cfg.Config.dd_task_depth > 0 then Some cfg.Config.dd_task_depth else None
  in
  { ctx; n; edge = Vec_dd.zero_state ctx.Engine.package n; dpool; task_depth }

let qubits st = st.n
let edge st = st.edge
let package st = st.ctx.Engine.package

let apply_op st (xo : Engine.exec_op) =
  let p = st.ctx.Engine.package in
  let g =
    match xo.Engine.xo_mat with
    | Some m -> m
    | None ->
      (match xo.Engine.xo_op with
       | Some op -> Mat_dd.of_op p ~n:st.n op
       | None -> invalid_arg "Dd_engine.apply_op: op without matrix or circuit op")
  in
  (match st.dpool with
   | Some pool -> st.edge <- Dd.mv_par p ~pool ?depth:st.task_depth g st.edge
   | None -> st.edge <- Dd.mv p g st.edge);
  Engine.no_stats

let size_metric st = Dd.vnode_count st.ctx.Engine.package st.edge
let memory_bytes st = Dd.memory_bytes st.ctx.Engine.package
let compact st = Dd.compact st.ctx.Engine.package ~vroots:[ st.edge ] ~mroots:[]
let observe st = Dd.observe_gauges st.ctx.Engine.package

let extract st = Engine.Dd_state { package = st.ctx.Engine.package; edge = st.edge }

(* Idempotent: leaves the package in the plain sequential regime. *)
let finalize st =
  match st.dpool with
  | None -> ()
  | Some pool ->
    Dd.quiesce st.ctx.Engine.package;
    Dd.disable_parallel st.ctx.Engine.package;
    Pool.shutdown pool;
    st.dpool <- None

let release st =
  finalize st;
  (* The vector DD is dead (converted away); keep only what the matrix
     side of the package reuses. *)
  st.edge <- Dd.vzero;
  Dd.compact st.ctx.Engine.package ~vroots:[] ~mroots:[]
