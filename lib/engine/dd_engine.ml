(* DD simulation as a stepwise engine: the state is a vector DD in the
   shared package; a gate is built as a matrix DD and applied with the
   compute-cached DD matrix-vector product. *)

type state = {
  ctx : Engine.ctx;
  n : int;
  mutable edge : Dd.vedge;
}

let name = "dd"
let trace_phase = Engine.Dd_phase

let init (ctx : Engine.ctx) ~n = { ctx; n; edge = Vec_dd.zero_state ctx.Engine.package n }

let qubits st = st.n
let edge st = st.edge
let package st = st.ctx.Engine.package

let apply_op st (xo : Engine.exec_op) =
  let p = st.ctx.Engine.package in
  let g =
    match xo.Engine.xo_mat with
    | Some m -> m
    | None ->
      (match xo.Engine.xo_op with
       | Some op -> Mat_dd.of_op p ~n:st.n op
       | None -> invalid_arg "Dd_engine.apply_op: op without matrix or circuit op")
  in
  st.edge <- Dd.mv p g st.edge;
  Engine.no_stats

let size_metric st = Dd.vnode_count st.ctx.Engine.package st.edge
let memory_bytes st = Dd.memory_bytes st.ctx.Engine.package
let compact st = Dd.compact st.ctx.Engine.package ~vroots:[ st.edge ] ~mroots:[]
let observe st = Dd.observe_gauges st.ctx.Engine.package

let extract st = Engine.Dd_state { package = st.ctx.Engine.package; edge = st.edge }
let finalize _ = ()

let release st =
  (* The vector DD is dead (converted away); keep only what the matrix
     side of the package reuses. *)
  st.edge <- Dd.vzero;
  Dd.compact st.ctx.Engine.package ~vroots:[] ~mroots:[]
