(** The stepwise run driver.

    [run] is the FlatDD hybrid algorithm: it steps {!Dd_engine} gate by
    gate under the conversion policy, owns the one DD→flat transition, and
    then steps {!Dmav_engine} over the (possibly fused) remainder, picking
    a kernel per gate when [Config.dense_dispatch] is on. [run_engine]
    drives any single {!Engine.ENGINE} over a whole circuit with the same
    timed/traced/cancellable gate loop and no conversion.

    Everything cross-cutting lives here: cancellation polling, trace
    records, peak-memory tracking, the per-phase [Obs] spans and the
    [dmav.dispatch.*] counters. Engines only apply gates. *)

exception Cancelled
(** Raised when the [cancel] poll returns [true]. Re-exported as
    [Simulator.Cancelled]. *)

type result = {
  n : int;
  gates : int;
  final : Engine.final_state;
  converted_at : int option;  (** gate index after which conversion ran *)
  seconds_total : float;
  seconds_dd : float;
  seconds_convert : float;
  seconds_dmav : float;
  conversion_stats : Convert.stats option;
  trace : Engine.gate_record list;  (** empty unless [config.trace] *)
  peak_memory_bytes : int;
  dmav_gates_cached : int;
  dmav_gates_uncached : int;
  dmav_cache_hits : int;
  modeled_macs : float;       (** Σ modeled MAC work over the flat phase *)
  fusion_stats : Fusion.stats option;
  order : int array option;
      (** Physical qubit order of [final] when it is a [Dd_state]:
          logical qubit [q] lives at DD level [order.(q)]. Flat buffers
          are always permuted back to the logical basis before the
          result is built, so this is [None] for every [Flat_state] and
          whenever the order is the identity. Use {!amplitudes} /
          {!amplitude} and never index a DD state manually when an
          order is set. *)
}

val run :
  ?cancel:(unit -> bool) ->
  ?pool:Pool.t ->
  ?package:Dd.package ->
  ?workspace:Dmav.workspace ->
  Config.t ->
  Circuit.t ->
  result
(** The hybrid DD→flat run from |0…0⟩ ({!Simulator.simulate} is a shim
    over this). A supplied [workspace] lets serial callers (the batch
    scheduler) reuse 2ⁿ scratch buffers across runs; it must have been
    built for the same [n] (a mismatched one is ignored) and must not be
    shared across concurrent runs. A supplied [package] replaces the
    per-run [Dd.create] — it must be freshly created or {!Dd.reset} (a
    warm handle from {!Warm}); results are then bit-identical to a
    cold run while skipping arena/table allocation. *)

val run_engine :
  ?cancel:(unit -> bool) ->
  ?pool:Pool.t ->
  ?package:Dd.package ->
  ?workspace:Dmav.workspace ->
  (module Engine.ENGINE with type state = 's) ->
  Config.t ->
  Circuit.t ->
  result
(** Runs the whole circuit on one engine — the pure-DD, pure-DMAV and
    pure-dense reference paths. [converted_at], [conversion_stats] and
    [fusion_stats] are always [None]; the total time lands in [seconds_dd]
    or [seconds_dmav] according to the engine's trace phase. Flat-phase
    kernel dispatch is a hybrid-run feature: here every DMAV gate goes
    through the §3.2.3 cached/uncached cost model only. *)

val amplitudes : result -> Buf.t
(** Final amplitudes as a flat vector in the {e logical} basis,
    whatever internal qubit order the run used (converts sequentially
    if the run ended in DD form). *)

val amplitude : result -> int -> Cnum.t
(** Single logical-basis amplitude: O(1) on a flat result, an O(n) DD
    walk otherwise — no 2ⁿ materialization. [amplitude r 0] is the p0
    fingerprint source. *)
