type t = {
  beta : float;
  epsilon : float;
  mutable v : float;
  mutable started : bool;
}

type verdict = Stay | Convert

let create ~beta ~epsilon =
  if not (beta >= 0.0 && beta < 1.0) then invalid_arg "Ewma.create: beta in [0,1)";
  if not (epsilon > 0.0) then invalid_arg "Ewma.create: epsilon > 0";
  { beta; epsilon; v = 0.0; started = false }

let observe t s =
  if not t.started then begin
    t.started <- true;
    t.v <- s;
    Stay
  end
  else begin
    t.v <- (t.beta *. t.v) +. ((1.0 -. t.beta) *. s);
    if t.epsilon *. t.v < s then Convert else Stay
  end

let value t = t.v
