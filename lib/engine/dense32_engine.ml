(* Dense direct application on a float32 amplitude plane: the f32 twin of
   [Dense_engine], registered through the same ENGINE signature. The state
   is a bare [Storage.F32.t]; [extract] widens to the f64 [Flat_state] the
   driver's result type carries, so downstream consumers (fingerprints,
   differential tests) never see the storage kind — only its rounding. *)

module K = Dense_kernel.Make (Storage.F32)

type state = {
  ctx : Engine.ctx;
  n : int;
  amps : Storage.F32.t;
}

let name = "dense32"
let trace_phase = Engine.Dmav_phase

let init (ctx : Engine.ctx) ~n = { ctx; n; amps = K.zero_state n }

let apply_op st (xo : Engine.exec_op) =
  match xo.Engine.xo_op with
  | None -> invalid_arg "Dense32_engine.apply_op: fused matrices have no dense kernel"
  | Some op ->
    K.op ~pool:st.ctx.Engine.pool ~n:st.n st.amps op;
    { Engine.no_stats with
      Engine.gs_dispatch = Some Engine.Dense_direct;
      gs_modeled_macs = Cost.dense_direct_macs ~n:st.n op }

let size_metric _ = 0
let memory_bytes st = Storage.F32.memory_bytes st.amps
let compact _ = ()
let observe _ = ()
let extract st = Engine.Flat_state (Storage.promote st.amps)
let finalize _ = ()
