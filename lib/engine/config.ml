type fusion_mode =
  | No_fusion
  | Dmav_aware
  | K_operations of int

type conversion_policy =
  | Ewma_policy
  | Convert_at of int
  | Never_convert

type t = {
  threads : int;
  beta : float;
  epsilon : float;
  simd_width : int;
  fusion : fusion_mode;
  policy : conversion_policy;
  compact_every : int;
  trace : bool;
  dense_dispatch : bool;
  dd_domains : int;
  dd_task_depth : int;
}

let default =
  { threads = 1;
    beta = 0.9;
    epsilon = 2.0;
    simd_width = 4;
    fusion = No_fusion;
    policy = Ewma_policy;
    compact_every = 64;
    trace = false;
    dense_dispatch = false;
    dd_domains = 1;
    dd_task_depth = 0 }

let with_threads threads t = { t with threads }
let with_dd_domains dd_domains t = { t with dd_domains }
