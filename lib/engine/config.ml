type fusion_mode =
  | No_fusion
  | Dmav_aware
  | K_operations of int

type conversion_policy =
  | Ewma_policy
  | Convert_at of int
  | Never_convert

(* Qubit-order policy (ISSUE 8). [No_order] keeps the identity order —
   every fingerprint byte-identical to the pre-order codebase. [Static_order]
   runs Order.static_order once before simulation. [Sift_order] adds the
   dynamic in-arena sifting pass, attempted when the EWMA policy would
   otherwise convert to the flat array. *)
type order_mode =
  | No_order
  | Static_order
  | Sift_order

let order_name = function
  | No_order -> "none"
  | Static_order -> "static"
  | Sift_order -> "sift"

let order_of_name = function
  | "none" -> Some No_order
  | "static" -> Some Static_order
  | "sift" -> Some Sift_order
  | _ -> None

(* Numeric precision of the flat amplitude plane (ISSUE 10). [F64] is the
   default and keeps every fingerprint byte-identical to the pre-storage
   refactor; [F32] halves the bytes streamed per flat-phase gate at a
   bounded accuracy cost (stores round to nearest float32). The DD phase
   always computes in f64. *)
type precision = F64 | F32

let precision_name = function F64 -> "f64" | F32 -> "f32"

let precision_of_name = function
  | "f64" -> Some F64
  | "f32" -> Some F32
  | _ -> None

type t = {
  threads : int;
  beta : float;
  epsilon : float;
  simd_width : int;
  fusion : fusion_mode;
  policy : conversion_policy;
  compact_every : int;
  trace : bool;
  dense_dispatch : bool;
  dd_domains : int;
  dd_task_depth : int;
  order : order_mode;
  precision : precision;
}

let default =
  { threads = 1;
    beta = 0.9;
    epsilon = 2.0;
    simd_width = 4;
    fusion = No_fusion;
    policy = Ewma_policy;
    compact_every = 64;
    trace = false;
    dense_dispatch = false;
    dd_domains = 1;
    dd_task_depth = 0;
    order = No_order;
    precision = F64 }

let with_threads threads t = { t with threads }
let with_dd_domains dd_domains t = { t with dd_domains }
