(* The driver owns everything an engine does not: the conversion policy
   (EWMA or fixed index), cooperative cancellation, per-gate trace records,
   peak-memory tracking, the per-phase Obs spans, and the explicit DD→flat
   transition. Engines are stepped one [Engine.exec_op] at a time; inside
   the flat phase the driver additionally picks a kernel per gate
   (DMAV-cached / DMAV-uncached / dense direct) with the §3.2.3 cost model
   when [Config.dense_dispatch] is on. *)

exception Cancelled

type result = {
  n : int;
  gates : int;
  final : Engine.final_state;
  converted_at : int option;
  seconds_total : float;
  seconds_dd : float;
  seconds_convert : float;
  seconds_dmav : float;
  conversion_stats : Convert.stats option;
  trace : Engine.gate_record list;
  peak_memory_bytes : int;
  dmav_gates_cached : int;
  dmav_gates_uncached : int;
  dmav_cache_hits : int;
  modeled_macs : float;
  fusion_stats : Fusion.stats option;
  order : int array option;
}

(* Per-phase spans: the global metrics accumulate across runs, while each
   run's seconds_* fields are the same measurements taken locally by
   [Obs.timed] — one clock pair per phase, no stopwatch plumbing. *)
let s_dd_phase = Obs.span "sim.dd_phase"
let s_convert = Obs.span "sim.convert"
let s_dmav_phase = Obs.span "sim.dmav_phase"
let c_runs = Obs.counter "sim.runs"
let c_gates = Obs.counter "sim.gates"
let c_dd_gates = Obs.counter "sim.gates_dd"
let c_dmav_gates = Obs.counter "sim.gates_dmav"
let c_conversions = Obs.counter "sim.conversions"
let s_order_score = Obs.span "order.score"
let c_order_static = Obs.counter "order.static.applied"

(* Flat-phase kernel dispatch, by outcome. Without [dense_dispatch] the
   cached/uncached counts mirror dmav.kernel.*; with it they reflect the
   three-way pick. *)
let c_disp_cached = Obs.counter "dmav.dispatch.cached"
let c_disp_uncached = Obs.counter "dmav.dispatch.uncached"
let c_disp_dense = Obs.counter "dmav.dispatch.dense"

let count_dispatch = function
  | Some Engine.Dmav_cached -> Obs.incr c_disp_cached
  | Some Engine.Dmav_uncached -> Obs.incr c_disp_uncached
  | Some Engine.Dense_direct -> Obs.incr c_disp_dense
  | None -> ()

let make_check_cancel cancel =
  match cancel with
  | None -> fun () -> ()
  | Some poll -> fun () -> if poll () then raise Cancelled

(* A caller-supplied package (a warm handle's arena) must arrive in its
   just-reset state — [Warm] guarantees that; a mismatched workspace is
   replaced rather than trusted. *)
let make_ctx ?package ?workspace (cfg : Config.t) ~pool ~n =
  let workspace =
    match workspace with
    | Some ws when Dmav.workspace_n ws = n -> ws
    | _ -> Dmav.workspace ~n
  in
  let package = match package with Some p -> p | None -> Dd.create () in
  { Engine.cfg; pool; package; workspace }

(* The flat phase's executable gate stream: remaining ops as matrix DDs,
   fused per config. An op survives as [xo_op] only when it was not fused,
   which is what keeps it eligible for the dense kernel. *)
let flat_plan (ctx : Engine.ctx) ~n ~first_index ops =
  let cfg = ctx.Engine.cfg in
  let p = ctx.Engine.package in
  let mats = List.map (fun op -> (Circuit.op_name op, Mat_dd.of_op p ~n op)) ops in
  let fusion_stats = ref None in
  let plan =
    match cfg.Config.fusion with
    | Config.No_fusion ->
      List.map2 (fun op (name, m) -> (name, Some op, m)) ops mats
    | Config.Dmav_aware ->
      let fused, st = Fusion.dmav_aware p (List.map snd mats) in
      fusion_stats := Some st;
      List.map (fun m -> ("fused", None, m)) fused
    | Config.K_operations k ->
      let fused, st = Fusion.k_operations p ~k (List.map snd mats) in
      fusion_stats := Some st;
      List.map (fun m -> ("kops", None, m)) fused
  in
  let exec =
    List.mapi
      (fun j (name, op, m) ->
         let disp =
           if cfg.Config.dense_dispatch then
             Some
               (Cost.dispatch p ~n ~threads:(Pool.size ctx.Engine.pool)
                  ~simd_width:cfg.Config.simd_width ?op m)
           else None
         in
         { Engine.xo_index = first_index + j;
           xo_name = name;
           xo_op = op;
           xo_mat = Some m;
           xo_dispatch = disp })
      plan
  in
  (exec, !fusion_stats)

(* --- qubit-order plumbing (ISSUE 8) -------------------------------- *)

(* Remap one op through [m] (register qubit -> physical position). Used
   for the gates applied after a dynamic sift moved levels around; the
   static order goes through [Circuit.remap] up front instead. *)
let map_op m = function
  | Circuit.Single { name; matrix; target; controls } ->
    Circuit.Single
      { name; matrix; target = m.(target); controls = List.map (Array.get m) controls }
  | Circuit.Two { name; matrix; q_hi; q_lo } ->
    Circuit.Two { name; matrix; q_hi = m.(q_hi); q_lo = m.(q_lo) }

(* Physical amplitude index of logical basis state [i]: bit [q] of [i]
   lands at bit position [ord.(q)]. Index 0 is a fixed point of every
   order, which is why `--order none` fingerprints stay byte-identical. *)
let phys_index ord i =
  let k = ref 0 in
  Array.iteri (fun q p -> k := !k lor (((i lsr q) land 1) lsl p)) ord;
  !k

(* The pre-simulation scoring pass: remap the circuit when the mode asks
   for it and the scored order strictly beats the identity. Returns the
   (possibly remapped) circuit plus the applied order
   (logical qubit -> register position). *)
let prepare_order (cfg : Config.t) (c : Circuit.t) =
  match cfg.Config.order with
  | Config.No_order -> (c, None)
  | Config.Static_order | Config.Sift_order ->
    let o, _ = Obs.timed s_order_score (fun () -> Order.static_order c) in
    if Order.is_identity o then (c, None)
    else begin
      Obs.incr c_order_static;
      let sigma = Order.to_array o in
      (Circuit.remap c ~n:c.Circuit.n sigma, Some sigma)
    end

(* Total order = static remap then dynamic sift moves:
   logical qubit [q] lives at physical position [cur.(sigma.(q))]. *)
let total_order sigma cur =
  match sigma, cur with
  | None, None -> None
  | Some s, None -> Some (Array.copy s)
  | None, Some m -> Some (Array.copy m)
  | Some s, Some m -> Some (Array.map (fun r -> m.(r)) s)

(* Permute a physical-order flat buffer into the logical basis. *)
let logicalize ord buf =
  match ord with
  | None -> buf
  | Some ord -> Buf.init (Buf.length buf) (fun i -> Buf.get buf (phys_index ord i))

(* Mutable per-run accounting shared by the hybrid run and [run_engine]. *)
type acc = {
  trace : Engine.gate_record list ref;
  record : Engine.gate_record -> unit;
  peak_mem : int ref;
  bump_mem : int -> unit;
  cached_gates : int ref;
  uncached_gates : int ref;
  cache_hits : int ref;
  modeled : float ref;
}

let make_acc (cfg : Config.t) =
  let trace = ref [] in
  let peak_mem = ref 0 in
  { trace;
    record = (fun r -> if cfg.Config.trace then trace := r :: !trace);
    peak_mem;
    bump_mem = (fun m -> if m > !peak_mem then peak_mem := m);
    cached_gates = ref 0;
    uncached_gates = ref 0;
    cache_hits = ref 0;
    modeled = ref 0.0 }

(* One cancellable, timed, traced engine step. *)
let step (type s) (module E : Engine.ENGINE with type state = s) st acc ~check_cancel
    ~ewma (xo : Engine.exec_op) =
  check_cancel ();
  let stats, dt = Timer.time (fun () -> E.apply_op st xo) in
  count_dispatch stats.Engine.gs_dispatch;
  (match stats.Engine.gs_cached with
   | Some true -> incr acc.cached_gates
   | Some false -> incr acc.uncached_gates
   | None -> ());
  acc.cache_hits := !(acc.cache_hits) + stats.Engine.gs_cache_hits;
  acc.modeled := !(acc.modeled) +. stats.Engine.gs_modeled_macs;
  acc.record
    { Engine.index = xo.Engine.xo_index;
      name = xo.Engine.xo_name;
      seconds = dt;
      phase = E.trace_phase;
      dd_size = (match E.trace_phase with Engine.Dd_phase -> E.size_metric st | _ -> 0);
      ewma;
      cached = stats.Engine.gs_cached;
      dispatch = stats.Engine.gs_dispatch };
  stats

let run ?cancel ?pool ?package ?workspace (cfg : Config.t) (c : Circuit.t) =
  let n = c.Circuit.n in
  let gates = Circuit.num_gates c in
  (* Cooperative cancellation: polled once per gate (and around the
     conversion), never inside a kernel, so the check costs one closure
     call per gate and cancellation latency is one gate application. *)
  let check_cancel = make_check_cancel cancel in
  let own_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Pool.create (Int.max 1 cfg.Config.threads) in
  Fun.protect
    ~finally:(fun () ->
        if own_pool then Pool.shutdown pool;
        if Check.enabled () then Check.observe ())
    (fun () ->
       Obs.incr c_runs;
       Obs.add c_gates gates;
       let c, sigma = prepare_order cfg c in
       (* [cur]: register qubit -> current DD level, once sifting has
          moved levels; [None] while the order is still the register
          order. Gates applied after a sift are remapped through it. *)
       let cur = ref None in
       let sift_attempts = ref 0 in
       let ctx = make_ctx ?package ?workspace cfg ~pool ~n in
       let monitor = Ewma.create ~beta:cfg.Config.beta ~epsilon:cfg.Config.epsilon in
       let acc = make_acc cfg in

       (* ---- DD phase: step the DD engine until the policy trips ----- *)
       let dd = Dd_engine.init ctx ~n in
       ignore (Ewma.observe monitor (float_of_int n));
       let converted_at = ref None in
       let i = ref 0 in
       let want_convert =
         ref (match cfg.Config.policy with Config.Convert_at k -> k < 0 | _ -> false)
       in
       let (), seconds_dd =
         Obs.timed s_dd_phase (fun () ->
             while !i < gates && not !want_convert do
               check_cancel ();
               let op = c.Circuit.ops.(!i) in
               let op = match !cur with None -> op | Some m -> map_op m op in
               let xo = Engine.exec_of_op !i op in
               let _stats, dt = Timer.time (fun () -> Dd_engine.apply_op dd xo) in
               let size = Dd_engine.size_metric dd in
               let verdict = Ewma.observe monitor (float_of_int size) in
               (match cfg.Config.policy with
                | Config.Ewma_policy -> if verdict = Ewma.Convert then want_convert := true
                | Config.Convert_at k -> if !i >= k then want_convert := true
                | Config.Never_convert -> ());
               acc.record
                 { Engine.index = !i; name = xo.Engine.xo_name; seconds = dt;
                   phase = Engine.Dd_phase; dd_size = size; ewma = Ewma.value monitor;
                   cached = None; dispatch = None };
               (* Dynamic sifting: when the EWMA verdict says convert,
                  try shrinking the DD by reordering levels first — a
                  substantial shrink keeps the run in the cheap DD
                  phase. Bounded attempts; whatever swaps the pass kept
                  are folded into [cur] either way, since the arena's
                  levels really moved. *)
               if !want_convert
                  && cfg.Config.order = Config.Sift_order
                  && cfg.Config.policy = Config.Ewma_policy
                  && !sift_attempts < 2 && size >= 16
               then begin
                 incr sift_attempts;
                 Dd_engine.compact dd;
                 let pkg = Dd_engine.package dd in
                 let perm, before, after =
                   Dd.sift_pass pkg ~root:(Dd_engine.edge dd) ~levels:n
                 in
                 let perm_id = ref true in
                 Array.iteri (fun l p -> if l <> p then perm_id := false) perm;
                 if not !perm_id then
                   cur :=
                     Some
                       (match !cur with
                        | None -> perm
                        | Some m -> Array.map (fun l -> perm.(l)) m);
                 Dd_engine.compact dd;
                 (* Only a real shrink moves the conversion-cost needle;
                    otherwise fall through to the flat array as before. *)
                 if 10 * after <= 7 * before then begin
                   want_convert := false;
                   ignore
                     (Ewma.observe monitor
                        (float_of_int (Dd_engine.size_metric dd)))
                 end
               end;
               if cfg.Config.compact_every > 0 && (!i + 1) mod cfg.Config.compact_every = 0
               then begin
                 acc.bump_mem (Dd_engine.memory_bytes dd);
                 Dd_engine.compact dd
               end;
               incr i
             done)
       in
       Obs.add c_dd_gates !i;
       Dd_engine.observe dd;
       acc.bump_mem (Dd_engine.memory_bytes dd);
       (* Quiesce the DD phase: shut down the domain pool and return the
          package to its sequential regime before conversion reads it. *)
       Dd_engine.finalize dd;

       (* ---- Conversion: the explicit DD→flat transition -------------- *)
       let conversion_stats = ref None in
       let flat = ref None in
       let seconds_convert =
         if !want_convert && !i <= gates then begin
           check_cancel ();
           Obs.incr c_conversions;
           let buf_stats, dt =
             Obs.timed s_convert (fun () ->
                 Convert.parallel (Dd_engine.package dd) ~pool ~n (Dd_engine.edge dd))
           in
           let buf, stats = buf_stats in
           conversion_stats := Some stats;
           converted_at := Some (!i - 1);
           flat := Some buf;
           acc.record
             { Engine.index = !i - 1; name = "dd->array"; seconds = dt;
               phase = Engine.Conversion; dd_size = 0; ewma = Ewma.value monitor;
               cached = None; dispatch = None };
           Dd_engine.release dd;
           dt
         end
         else 0.0
       in

       (* ---- Flat phase: DMAV engine with per-gate dispatch ----------- *)
       let fusion_stats = ref None in
       let final = ref None in
       let seconds_dmav =
         match !flat with
         | None -> 0.0
         | Some buf ->
           let fe = ref None in
           let (), dt =
             Obs.timed s_dmav_phase (fun () ->
                 let remaining =
                   Array.to_list (Array.sub c.Circuit.ops !i (gates - !i))
                 in
                 let remaining =
                   match !cur with
                   | None -> remaining
                   | Some m -> List.map (map_op m) remaining
                 in
                 let plan, fstats = flat_plan ctx ~n ~first_index:!i remaining in
                 fusion_stats := fstats;
                 Obs.add c_dmav_gates (List.length plan);
                 (* Precision branch: at [F32] the converted f64 buffer is
                    demoted once — the single rounding hand-off — and the
                    flat phase runs on the f32 engine twin. *)
                 (match cfg.Config.precision with
                  | Config.F64 ->
                    fe := Some (Engine.Packed ((module Dmav_engine), Dmav_engine.of_buf ctx ~n buf))
                  | Config.F32 ->
                    fe :=
                      Some
                        (Engine.Packed
                           ((module Dmav32_engine),
                            Dmav32_engine.of_buf ctx ~n (Storage.demote buf))));
                 match !fe with
                 | None -> ()
                 | Some (Engine.Packed ((module E), eng)) ->
                   List.iter
                     (fun xo ->
                        ignore
                          (step (module E) eng acc ~check_cancel
                             ~ewma:(Ewma.value monitor) xo))
                     plan;
                   acc.bump_mem (E.memory_bytes eng))
           in
           (match !fe with
            | None -> ()
            | Some (Engine.Packed ((module E), eng)) ->
              E.observe eng;
              final := Some (E.extract eng);
              E.finalize eng);
           dt
       in

       let final =
         match !final with
         | Some f -> f
         | None -> Dd_engine.extract dd
       in
       (* Results are always logical-basis: flat buffers are permuted
          here; a final DD state stays physical and carries its order. *)
       let ord = total_order sigma !cur in
       let final, order =
         match final with
         | Engine.Flat_state buf -> (Engine.Flat_state (logicalize ord buf), None)
         | Engine.Dd_state _ as f -> (f, ord)
       in
       { n;
         gates;
         final;
         order;
         converted_at = !converted_at;
         seconds_total = seconds_dd +. seconds_convert +. seconds_dmav;
         seconds_dd;
         seconds_convert;
         seconds_dmav;
         conversion_stats = !conversion_stats;
         trace = List.rev !(acc.trace);
         peak_memory_bytes = !(acc.peak_mem);
         dmav_gates_cached = !(acc.cached_gates);
         dmav_gates_uncached = !(acc.uncached_gates);
         dmav_cache_hits = !(acc.cache_hits);
         modeled_macs = !(acc.modeled);
         fusion_stats = !fusion_stats })

(* Run a whole circuit on ONE engine, no conversion — the pure-DD,
   pure-DMAV and pure-dense reference paths, all through the same timed,
   traced, cancellable gate loop. *)
let run_engine (type s) ?cancel ?pool ?package ?workspace
    (module E : Engine.ENGINE with type state = s) (cfg : Config.t) (c : Circuit.t) =
  let n = c.Circuit.n in
  let gates = Circuit.num_gates c in
  let check_cancel = make_check_cancel cancel in
  let own_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Pool.create (Int.max 1 cfg.Config.threads) in
  Fun.protect
    ~finally:(fun () ->
        if own_pool then Pool.shutdown pool;
        if Check.enabled () then Check.observe ())
    (fun () ->
       Obs.incr c_runs;
       Obs.add c_gates gates;
       (* Static order only: the single-engine paths have no conversion
          decision, hence no sifting trigger. *)
       let c, sigma = prepare_order cfg c in
       let ctx = make_ctx ?package ?workspace cfg ~pool ~n in
       let monitor = Ewma.create ~beta:cfg.Config.beta ~epsilon:cfg.Config.epsilon in
       ignore (Ewma.observe monitor (float_of_int n));
       let acc = make_acc cfg in
       let span =
         match E.trace_phase with Engine.Dd_phase -> s_dd_phase | _ -> s_dmav_phase
       in
       let st = E.init ctx ~n in
       let (), seconds =
         Obs.timed span (fun () ->
             Array.iteri
               (fun i op ->
                  let xo = Engine.exec_of_op i op in
                  ignore (step (module E) st acc ~check_cancel ~ewma:(Ewma.value monitor) xo);
                  (match E.trace_phase with
                   | Engine.Dd_phase ->
                     ignore (Ewma.observe monitor (float_of_int (E.size_metric st)))
                   | _ -> ());
                  if cfg.Config.compact_every > 0 && (i + 1) mod cfg.Config.compact_every = 0
                  then begin
                    acc.bump_mem (E.memory_bytes st);
                    E.compact st
                  end)
               c.Circuit.ops)
       in
       (match E.trace_phase with
        | Engine.Dd_phase -> Obs.add c_dd_gates gates
        | _ -> Obs.add c_dmav_gates gates);
       E.observe st;
       acc.bump_mem (E.memory_bytes st);
       let final = E.extract st in
       E.finalize st;
       let dd_phase = E.trace_phase = Engine.Dd_phase in
       let final, order =
         match final with
         | Engine.Flat_state buf -> (Engine.Flat_state (logicalize sigma buf), None)
         | Engine.Dd_state _ as f -> (f, sigma)
       in
       { n;
         gates;
         final;
         order;
         converted_at = None;
         seconds_total = seconds;
         seconds_dd = (if dd_phase then seconds else 0.0);
         seconds_convert = 0.0;
         seconds_dmav = (if dd_phase then 0.0 else seconds);
         conversion_stats = None;
         trace = List.rev !(acc.trace);
         peak_memory_bytes = !(acc.peak_mem);
         dmav_gates_cached = !(acc.cached_gates);
         dmav_gates_uncached = !(acc.uncached_gates);
         dmav_cache_hits = !(acc.cache_hits);
         modeled_macs = !(acc.modeled);
         fusion_stats = None })

let amplitudes r =
  match r.final with
  | Engine.Flat_state buf -> buf
  | Engine.Dd_state { package; edge } ->
    logicalize r.order (Convert.sequential package ~n:r.n edge)

let amplitude r i =
  match r.final with
  | Engine.Flat_state buf -> Buf.get buf i
  | Engine.Dd_state { package; edge } ->
    let j = match r.order with None -> i | Some ord -> phys_index ord i in
    Dd.vamplitude package edge j
