(* The flat-array engine on a float32 amplitude plane: the f32 twin of
   [Dmav_engine] behind the same ENGINE signature, running the
   precision-generic [Dmav_generic] kernels. The DD package (and therefore
   every gate matrix and ctable weight) stays f64; rounding happens only
   on stores into the f32 V/W buffers. Scratch buffers come from the
   engine's own f32 workspace — the shared ctx workspace is f64-sized and
   typed, so the f32 pair cannot alias it. [extract] widens the final
   vector to the f64 [Flat_state] the driver's result type carries. *)

module K = Dmav_generic.Make (Storage.F32)
module DK = Dense_kernel.Make (Storage.F32)

type state = {
  ctx : Engine.ctx;
  n : int;
  ws : K.workspace;
  mutable v : Storage.F32.t;
  mutable w : Storage.F32.t;
  mutable max_buffers : int;
}

let name = "dmav32"
let trace_phase = Engine.Dmav_phase

(* Seat the engine on an existing f32 amplitude vector — the driver's
   DD→flat conversion demotes its f64 output once and hands it in here. *)
let of_buf (ctx : Engine.ctx) ~n buf =
  if Storage.F32.length buf <> 1 lsl n then
    invalid_arg "Dmav32_engine.of_buf: wrong length";
  let ws = K.workspace ~n in
  { ctx; n; ws; v = buf; w = K.take ws; max_buffers = 0 }

let init (ctx : Engine.ctx) ~n =
  let v = Storage.F32.create (1 lsl n) in
  Storage.F32.set2 v 0 1.0 0.0;
  of_buf ctx ~n v

let mat_of st (xo : Engine.exec_op) =
  match xo.Engine.xo_mat with
  | Some m -> m
  | None ->
    (match xo.Engine.xo_op with
     | Some op -> Mat_dd.of_op st.ctx.Engine.package ~n:st.n op
     | None -> invalid_arg "Dmav32_engine.apply_op: op without matrix or circuit op")

let apply_dmav st (xo : Engine.exec_op) decided =
  let m = mat_of st xo in
  let s =
    match decided with
    | Some decision ->
      K.apply_decided ~workspace:st.ws st.ctx.Engine.package
        ~pool:st.ctx.Engine.pool ~n:st.n decision m ~v:st.v ~w:st.w
    | None ->
      K.apply ~workspace:st.ws st.ctx.Engine.package ~pool:st.ctx.Engine.pool
        ~simd_width:st.ctx.Engine.cfg.Config.simd_width ~n:st.n m ~v:st.v ~w:st.w
  in
  if s.Dmav.buffers_used > st.max_buffers then st.max_buffers <- s.Dmav.buffers_used;
  let tmp = st.v in
  st.v <- st.w;
  st.w <- tmp;
  { Engine.gs_cached = Some s.Dmav.used_cache;
    gs_dispatch =
      Some (if s.Dmav.used_cache then Engine.Dmav_cached else Engine.Dmav_uncached);
    gs_cache_hits = s.Dmav.cache_hits;
    gs_buffers_used = s.Dmav.buffers_used;
    gs_modeled_macs = Cost.modeled_macs s.Dmav.decision }

let apply_op st (xo : Engine.exec_op) =
  match xo.Engine.xo_dispatch with
  | Some ({ Cost.kernel = Cost.Dense_kernel; _ } as disp) ->
    let op =
      match xo.Engine.xo_op with
      | Some op -> op
      | None -> invalid_arg "Dmav32_engine.apply_op: dense dispatch on a fused gate"
    in
    DK.op ~pool:st.ctx.Engine.pool ~n:st.n st.v op;
    { Engine.no_stats with
      Engine.gs_dispatch = Some Engine.Dense_direct;
      gs_modeled_macs = Cost.dispatch_modeled_macs disp }
  | Some { Cost.dmav; _ } -> apply_dmav st xo (Some dmav)
  | None -> apply_dmav st xo None

let size_metric _ = 0

let memory_bytes st =
  ((2 + st.max_buffers) * (Storage.F32.buffer_bytes ~len:(1 lsl st.n) + 24))
  + Dd.memory_bytes st.ctx.Engine.package

let compact _ = ()
let observe st = Dd.observe_gauges st.ctx.Engine.package

let extract st = Engine.Flat_state (Storage.promote st.v)

let finalize st =
  (* The f32 workspace dies with the engine; nothing to hand back. *)
  K.give st.ws st.w;
  K.give st.ws st.v
