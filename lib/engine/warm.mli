(** Warm engine-state handles for service-style reuse.

    Every [Driver.run] without a supplied package/workspace rebuilds the
    DD arenas, unique tables, complex-number table, compute caches and
    the 2ⁿ DMAV buffers — acceptable per process, wasteful per request.
    A {!t} keeps released handles idle; a request that {!acquire}s one
    skips all of that allocation ([serve.warm_hits]) and still computes
    bit-identical results, because {!release} runs [Dd.reset] before a
    handle can be reused.

    Tenancy: handles remember the last tenant they served. Acquiring a
    handle for a different tenant zeroes every cached amplitude buffer
    first ([serve.warm_scrubs]), so state can never leak across tenants
    through the workspace free list.

    Instrumented as [serve.warm_{hits,misses,scrubs,evictions}] and the
    gauge [serve.warm_idle]. Thread-safe: the idle list is mutex-guarded;
    an acquired handle belongs to exactly one run at a time. *)

type handle = {
  h_n : int;                    (** qubit count the workspace was built for *)
  package : Dd.package;         (** pass as [Driver.run ?package] *)
  workspace : Dmav.workspace;   (** pass as [Driver.run ?workspace] *)
  mutable last_tenant : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the idle list (default 8); excess handles released
    beyond it are dropped for the GC ([serve.warm_evictions]). *)

val acquire : t -> ?tenant:string -> n:int -> unit -> handle
(** Pops the most recently released handle built for [n] qubits, or
    builds a cold one. Scrubs the workspace when the tenant changed. *)

val release : t -> handle -> unit
(** Resets the handle's package and returns it to the idle list. The
    caller must have finished reading anything derived from the package
    (e.g. a [Dd_state] final and its p0) — every edge dies here. *)

val idle_handles : t -> int

val drop_all : t -> unit
(** Empties the idle list (handles are plain GC-managed state). *)
