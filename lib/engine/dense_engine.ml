(* Dense direct application as a stepwise engine: the state is a flat
   vector and every gate runs through the [Apply] amplitude-pair kernels —
   the "Quantum++" style baseline, now first-class behind the same ENGINE
   signature as the DD and DMAV engines (and the kernel the flat phase's
   dense dispatch borrows). *)

type state = {
  ctx : Engine.ctx;
  st : State.t;
}

let name = "dense"
let trace_phase = Engine.Dmav_phase

let init (ctx : Engine.ctx) ~n = { ctx; st = State.zero_state n }

let apply_op st (xo : Engine.exec_op) =
  match xo.Engine.xo_op with
  | None -> invalid_arg "Dense_engine.apply_op: fused matrices have no dense kernel"
  | Some op ->
    Apply.op ~pool:st.ctx.Engine.pool st.st op;
    { Engine.no_stats with
      Engine.gs_dispatch = Some Engine.Dense_direct;
      gs_modeled_macs = Cost.dense_direct_macs ~n:st.st.State.n op }

let size_metric _ = 0
let memory_bytes st = Buf.memory_bytes st.st.State.amps
let compact _ = ()
let observe _ = ()
let extract st = Engine.Flat_state st.st.State.amps
let finalize _ = ()
